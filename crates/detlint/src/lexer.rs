//! A minimal Rust lexer for lint purposes.
//!
//! [`strip`] blanks comments, string literals and character literals out of
//! a source file while preserving byte offsets (every masked byte becomes a
//! space; newlines survive), so that the pattern rules in [`crate::rules`]
//! can match on *code* without tripping over pattern names that merely
//! appear in doc comments, log messages or test fixtures. While scanning,
//! the lexer also extracts `detlint:allow(...)` suppression pragmas from
//! comments, because those live exactly in the region the mask erases.
//!
//! The lexer understands: line comments, nested block comments, plain and
//! byte strings with escapes, raw strings (`r"…"`, `r#"…"#`, `br##"…"##`),
//! character and byte-character literals (including escapes and multi-byte
//! characters), and it distinguishes lifetimes (`'a`) from char literals.
//! Raw identifiers (`r#match`) pass through untouched. That is the whole
//! grammar a line-oriented determinism lint needs; anything fancier would
//! be re-implementing rustc.

/// One suppression pragma found in a comment.
///
/// Grammar (inside any `//` or `/* */` comment):
///
/// ```text
/// detlint:allow(<rule>): <reason>        — suppress on this / the next line
/// detlint:allow-file(<rule>): <reason>   — suppress for the whole file
/// ```
///
/// The reason is mandatory; pragma hygiene is enforced by the driver, not
/// here — the lexer reports what it saw, including malformed pragmas (empty
/// rule or reason), so the driver can flag them.
///
/// Pragmas are only recognized in *plain* comments (`//`, `/* */`), never
/// in doc comments: documentation legitimately quotes the pragma syntax
/// (this very paragraph does), while directives belong in code comments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    /// 1-based source line the pragma comment starts on.
    pub line: usize,
    /// Rule identifier between the parentheses (may be empty if malformed).
    pub rule: String,
    /// Justification text after the closing `):` (may be empty if missing).
    pub reason: String,
    /// `allow-file` form: applies to the entire file.
    pub file_level: bool,
    /// Whether code precedes the comment on the same line. A trailing
    /// pragma suppresses its own line; a standalone one suppresses the
    /// next line.
    pub code_before: bool,
}

impl Pragma {
    /// The 1-based line this pragma suppresses (line-level pragmas only).
    pub fn target_line(&self) -> usize {
        if self.code_before {
            self.line
        } else {
            self.line + 1
        }
    }
}

/// Result of masking one source file.
#[derive(Debug)]
pub struct Stripped {
    /// Same byte length as the input; comments, strings and char literals
    /// replaced by spaces, newlines preserved, code copied verbatim.
    pub masked: String,
    /// Every `detlint:` pragma found in a comment, in source order.
    pub pragmas: Vec<Pragma>,
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Whether the current (partially built) output line already contains code.
fn line_has_code(out: &[u8]) -> bool {
    out.iter()
        .rev()
        .take_while(|&&b| b != b'\n')
        .any(|&b| !b.is_ascii_whitespace())
}

/// Parses a `detlint:` pragma out of raw comment text, if present.
/// Whether raw comment text is a doc comment (`///`, `//!`, `/**`, `/*!`).
/// Rustdoc quirk: `////…` and `/***…` are *plain* comments again, but for
/// pragma purposes treating them as docs too is harmless — directives
/// belong after exactly two sigil characters.
fn is_doc_comment(comment: &str) -> bool {
    comment.starts_with("///")
        || comment.starts_with("//!")
        || comment.starts_with("/**") && comment != "/**/"
        || comment.starts_with("/*!")
}

fn parse_pragma(comment: &str, line: usize, code_before: bool) -> Option<Pragma> {
    if is_doc_comment(comment) {
        return None;
    }
    // Strip comment sigils: `//`, `/*` and any decorative `*`.
    let t = comment
        .trim_start_matches('/')
        .trim_start_matches('*')
        .trim_start_matches('!')
        .trim();
    let t = t.strip_suffix("*/").unwrap_or(t).trim_end();
    let (file_level, rest) = if let Some(r) = t.strip_prefix("detlint:allow-file(") {
        (true, r)
    } else if let Some(r) = t.strip_prefix("detlint:allow(") {
        (false, r)
    } else if t.starts_with("detlint:") {
        // Misspelled directive (e.g. `detlint:allow missing parens`): report
        // it with an empty rule so the driver can flag the hygiene error.
        return Some(Pragma {
            line,
            rule: String::new(),
            reason: String::new(),
            file_level: false,
            code_before,
        });
    } else {
        return None;
    };
    let (rule, after) = match rest.find(')') {
        Some(close) => (rest[..close].trim().to_string(), &rest[close + 1..]),
        None => (String::new(), ""),
    };
    let reason = after
        .trim_start()
        .strip_prefix(':')
        .map(str::trim)
        .unwrap_or("")
        .to_string();
    Some(Pragma {
        line,
        rule,
        reason,
        file_level,
        code_before,
    })
}

/// Masks comments/strings/chars out of `src`; collects pragmas.
pub fn strip(src: &str) -> Stripped {
    let b = src.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(b.len());
    let mut pragmas = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    // Pushes `n` blanks, preserving any newlines in the consumed region.
    macro_rules! blank {
        ($from:expr, $to:expr) => {
            for k in $from..$to {
                if b[k] == b'\n' {
                    out.push(b'\n');
                    line += 1;
                } else {
                    out.push(b' ');
                }
            }
        };
    }

    while i < b.len() {
        let c = b[i];
        // Line comment.
        if c == b'/' && b.get(i + 1) == Some(&b'/') {
            let code_before = line_has_code(&out);
            let start = i;
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            if let Some(p) = parse_pragma(&src[start..i], line, code_before) {
                pragmas.push(p);
            }
            blank!(start, i);
            continue;
        }
        // Block comment (nested).
        if c == b'/' && b.get(i + 1) == Some(&b'*') {
            let code_before = line_has_code(&out);
            let start = i;
            let pragma_line = line;
            let mut depth = 1usize;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            if let Some(p) = parse_pragma(&src[start..i], pragma_line, code_before) {
                pragmas.push(p);
            }
            blank!(start, i);
            continue;
        }
        // Raw / byte strings: r"…", r#"…"#, b"…", br#"…"#, b'…'.
        if (c == b'r' || c == b'b') && !out.last().copied().is_some_and(is_ident_byte) {
            let mut j = i + 1;
            let byte_prefix = c == b'b';
            if byte_prefix && b.get(j) == Some(&b'r') {
                j += 1;
            }
            let raw = b.get(j.wrapping_sub(1)) == Some(&b'r') && (j > i + 1 || c == b'r');
            if raw {
                let mut hashes = 0usize;
                while b.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                if b.get(j) == Some(&b'"') {
                    // Raw string: scan for `"` followed by `hashes` hashes.
                    j += 1;
                    loop {
                        match b.get(j) {
                            None => break,
                            Some(&b'"') => {
                                let end = j + 1 + hashes;
                                if b[j + 1..(end).min(b.len())].iter().all(|&h| h == b'#')
                                    && end <= b.len()
                                    && (j + 1..end).len() == hashes
                                {
                                    j = end;
                                    break;
                                }
                                j += 1;
                            }
                            Some(_) => j += 1,
                        }
                    }
                    blank!(i, j);
                    i = j;
                    continue;
                }
                // `r#ident` (raw identifier) or bare `r`: fall through.
            } else if byte_prefix && b.get(j) == Some(&b'"') {
                // b"…" — handled by the plain-string arm below after the
                // prefix byte is masked.
                out.push(b' ');
                i = j;
                continue;
            } else if byte_prefix && b.get(j) == Some(&b'\'') {
                out.push(b' ');
                i = j;
                continue;
            }
            out.push(c);
            i += 1;
            continue;
        }
        // Plain string with escapes.
        if c == b'"' {
            out.push(b' ');
            i += 1;
            while i < b.len() {
                match b[i] {
                    b'\\' => {
                        out.push(b' ');
                        i += 1;
                        if i < b.len() {
                            if b[i] == b'\n' {
                                out.push(b'\n');
                                line += 1;
                            } else {
                                out.push(b' ');
                            }
                            i += 1;
                        }
                    }
                    b'"' => {
                        out.push(b' ');
                        i += 1;
                        break;
                    }
                    b'\n' => {
                        out.push(b'\n');
                        line += 1;
                        i += 1;
                    }
                    _ => {
                        out.push(b' ');
                        i += 1;
                    }
                }
            }
            continue;
        }
        // Char literal vs lifetime.
        if c == b'\'' {
            let is_char_lit = match b.get(i + 1) {
                Some(&b'\\') => true,
                Some(&n) if n >= 0x80 => true, // multi-byte char literal
                Some(_) => b.get(i + 2) == Some(&b'\''),
                None => false,
            };
            if is_char_lit {
                let start = i;
                i += 1; // opening quote
                if b.get(i) == Some(&b'\\') {
                    i += 2; // escape introducer + escaped byte
                            // \u{…} and friends: scan to the closing quote.
                    while i < b.len() && b[i] != b'\'' {
                        i += 1;
                    }
                } else {
                    while i < b.len() && b[i] != b'\'' {
                        i += 1;
                    }
                }
                i += 1; // closing quote (or EOF)
                let end = i.min(b.len());
                blank!(start, end);
                i = end;
                continue;
            }
            // Lifetime: copy the quote, the identifier follows as code.
            out.push(c);
            i += 1;
            continue;
        }
        if c == b'\n' {
            out.push(b'\n');
            line += 1;
        } else {
            out.push(c);
        }
        i += 1;
    }

    Stripped {
        masked: String::from_utf8(out).unwrap_or_default(),
        pragmas,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_comments() {
        let s = strip("let x = 1; // HashMap here\nlet y = 2;\n");
        assert!(!s.masked.contains("HashMap"));
        assert!(s.masked.contains("let x = 1;"));
        assert!(s.masked.contains("let y = 2;"));
        assert_eq!(
            s.masked.len(),
            "let x = 1; // HashMap here\nlet y = 2;\n".len()
        );
    }

    #[test]
    fn masks_nested_block_comments() {
        let s = strip("a /* outer /* Instant::now */ still */ b\n");
        assert!(!s.masked.contains("Instant"));
        assert!(s.masked.starts_with('a'));
        assert!(s.masked.trim_end().ends_with('b'));
    }

    #[test]
    fn masks_strings_and_preserves_lines() {
        let src = "let s = \"Instant::now in a string\";\nlet t = 3;\n";
        let s = strip(src);
        assert!(!s.masked.contains("Instant"));
        assert_eq!(s.masked.matches('\n').count(), 2);
        assert_eq!(s.masked.len(), src.len());
    }

    #[test]
    fn masks_raw_strings_with_hashes() {
        let src = "let s = r#\"thread_rng \"quoted\" inside\"#; let x = 1;\n";
        let s = strip(src);
        assert!(!s.masked.contains("thread_rng"));
        assert!(s.masked.contains("let x = 1;"));
    }

    #[test]
    fn masks_byte_and_char_literals_but_not_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let c = 'h'; let b = b'\\n'; }\n";
        let s = strip(src);
        assert!(s.masked.contains("fn f<'a>(x: &'a str)"));
        assert!(!s.masked.contains("'h'"));
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let src = "let s = \"a\\\"HashSet\\\"b\"; let x = 0;\n";
        let s = strip(src);
        assert!(!s.masked.contains("HashSet"));
        assert!(s.masked.contains("let x = 0;"));
    }

    #[test]
    fn raw_identifiers_pass_through() {
        let s = strip("let r#match = 1;\n");
        assert!(s.masked.contains("r#match"));
    }

    #[test]
    fn extracts_trailing_and_standalone_pragmas() {
        let src = "\
// detlint:allow(wall-clock): startup banner only\n\
let a = 1;\n\
let b = 2; // detlint:allow(env-read): test helper\n";
        let s = strip(src);
        assert_eq!(s.pragmas.len(), 2);
        assert_eq!(s.pragmas[0].rule, "wall-clock");
        assert_eq!(s.pragmas[0].reason, "startup banner only");
        assert!(!s.pragmas[0].code_before);
        assert_eq!(s.pragmas[0].target_line(), 2);
        assert_eq!(s.pragmas[1].rule, "env-read");
        assert!(s.pragmas[1].code_before);
        assert_eq!(s.pragmas[1].target_line(), 3);
    }

    #[test]
    fn extracts_file_level_pragma() {
        let s = strip("// detlint:allow-file(float-accum): ordered Vec iteration\n");
        assert_eq!(s.pragmas.len(), 1);
        assert!(s.pragmas[0].file_level);
        assert_eq!(s.pragmas[0].rule, "float-accum");
    }

    #[test]
    fn doc_comments_never_carry_pragmas() {
        let s = strip(
            "/// detlint:allow(wall-clock): quoted in docs\n\
             //! detlint:allow-file(float-accum): quoted in docs\n\
             /** detlint:allow(env-read): quoted in docs */\n",
        );
        assert!(s.pragmas.is_empty());
    }

    #[test]
    fn malformed_pragma_is_still_reported() {
        let s = strip("// detlint:allow(wall-clock)\nlet x = 1;\n");
        assert_eq!(s.pragmas.len(), 1);
        assert_eq!(s.pragmas[0].rule, "wall-clock");
        assert!(s.pragmas[0].reason.is_empty());
    }

    #[test]
    fn crlf_sources_preserve_offsets_and_pragma_text() {
        // Windows checkouts hand us \r\n; the mask must stay byte-for-byte
        // aligned and pragma rule/reason must not pick up a stray \r.
        let src = "// detlint:allow(nondet-iteration): membership probe\r\n\
                   let m = std::collections::HashSet::new();\r\n\
                   let t = Instant::now(); // trailing comment\r\n";
        let s = strip(src);
        assert_eq!(s.masked.len(), src.len());
        assert_eq!(s.pragmas.len(), 1);
        assert_eq!(s.pragmas[0].rule, "nondet-iteration");
        assert_eq!(s.pragmas[0].reason, "membership probe");
        assert!(!s.pragmas[0].code_before);
        assert_eq!(s.pragmas[0].target_line(), 2);
        // Code survives, comments vanish, every \r outside a comment stays
        // put so byte offsets keep matching the original file.
        assert!(s.masked.contains("HashSet::new();\r\n"));
        assert!(s.masked.contains("Instant::now();"));
        assert!(!s.masked.contains("trailing"));
    }

    #[test]
    fn crlf_trailing_pragma_targets_its_own_line() {
        let src = "let a = 1;\r\nlet b = 2; // detlint:allow(env-read): helper\r\n";
        let s = strip(src);
        assert_eq!(s.pragmas.len(), 1);
        assert!(s.pragmas[0].code_before);
        assert_eq!(s.pragmas[0].target_line(), 2);
        assert_eq!(s.pragmas[0].reason, "helper");
    }

    #[test]
    fn raw_hash_guard_decoys_do_not_terminate_early() {
        // A `"#` inside an `r##"…"##` literal is a decoy, not a terminator:
        // the guard needs two hashes. The literal spans lines; everything in
        // it must be masked, everything after the true `"##` must survive.
        let src = "let s = r##\"line one \"# decoy\nHashMap inside\"##;\nlet x = HashSet::new();\n";
        let s = strip(src);
        assert_eq!(s.masked.len(), src.len());
        assert!(!s.masked.contains("decoy"));
        assert!(!s.masked.contains("HashMap"));
        assert!(s.masked.contains("let x = HashSet::new();"));
    }

    #[test]
    fn byte_raw_string_with_hash_guard_is_masked() {
        let src = "let b = br##\"x\"# y\"##; let z = 1;\n";
        let s = strip(src);
        assert!(!s.masked.contains('y'));
        assert!(s.masked.contains("let z = 1;"));
        assert_eq!(s.masked.len(), src.len());
    }

    #[test]
    fn unterminated_raw_string_masks_to_eof_without_panic() {
        // Guard is two hashes; the file ends after a one-hash decoy, so the
        // literal never closes. Everything to EOF is string content.
        let src = "let s = r##\"never closed \" nor \"# thread_rng";
        let s = strip(src);
        assert_eq!(s.masked.len(), src.len());
        assert!(s.masked.starts_with("let s = "));
        assert!(!s.masked.contains("thread_rng"));
    }

    #[test]
    fn nested_block_comments_with_crlf_preserve_length() {
        let src = "a /* outer\r\n /* inner Instant */\r\n tail */ b\r\n";
        let s = strip(src);
        assert_eq!(s.masked.len(), src.len());
        assert!(!s.masked.contains("Instant"));
        assert!(!s.masked.contains("tail"));
        assert!(s.masked.starts_with('a'));
        assert!(s.masked.contains('b'));
        // Both newlines survive so later lines keep their numbers.
        assert_eq!(s.masked.matches('\n').count(), 3);
    }

    #[test]
    fn unterminated_block_comment_masks_to_eof() {
        let src = "ok(); /* no close /* deeper */ still open\nthread_rng()\n";
        let s = strip(src);
        assert_eq!(s.masked.len(), src.len());
        assert!(s.masked.contains("ok();"));
        assert!(!s.masked.contains("thread_rng"));
    }

    #[test]
    fn escaped_line_continuation_in_crlf_string() {
        // `\` + CRLF inside a string literal: the \r must not be re-emitted
        // as a newline (that would shift every later line number by one).
        let src = "let s = \"ab\\\r\ncd\"; let x = 1;\r\n";
        let s = strip(src);
        assert_eq!(s.masked.len(), src.len());
        assert_eq!(s.masked.matches('\n').count(), 2);
        assert!(s.masked.contains("let x = 1;"));
    }
}
