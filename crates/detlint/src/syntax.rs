//! Item/token-tree syntax model over stripped source.
//!
//! The lexical rules in [`crate::rules`] match patterns line by line; the
//! semantic packs in [`crate::semantic`] need *structure*: which `impl`
//! block a statement lives in, what a function's body calls, which field
//! chains it writes. This module supplies exactly that much syntax — a
//! tokenizer with matched delimiters and an item-level parser producing
//! per-file symbol tables ([`FileModel`]: structs with field names, fns
//! with impl context and body ranges) that aggregate into per-crate
//! models ([`CrateModel`]) with an intra-crate call graph.
//!
//! It is deliberately *not* a Rust parser: expressions are never built
//! into trees. Function bodies stay flat token slices, and the analysis
//! helpers ([`BodyFacts`]) extract the three shapes the rule packs
//! consume — call sites with receiver chains, field-write chains (walking
//! assignment targets backwards through `.field`, `[index]` and
//! `.method()` links), and lock-guard bindings with their enclosing-block
//! extent. Anything the flat model cannot see (writes through a binding
//! of a `&mut` projection, macro-generated code) is documented as out of
//! scope; the runtime auditor remains the backstop for those.

use std::collections::BTreeSet;

/// Token category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier, keyword, or numeric literal chunk.
    Ident,
    /// Single punctuation byte (operators are sequences of these).
    Punct,
    /// `(`, `[` or `{`.
    Open,
    /// `)`, `]` or `}`.
    Close,
}

/// One token of masked source.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    /// Token text (identifier text or the punctuation byte).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 0-based byte offset into the file (adjacency checks for fused
    /// operators like `+=` compare offsets).
    pub off: u32,
}

impl Tok {
    pub fn is(&self, s: &str) -> bool {
        self.text == s
    }

    /// Byte offset one past the token.
    fn end(&self) -> u32 {
        self.off + self.text.len() as u32
    }
}

/// Tokenizes masked source (comments/strings already blanked by
/// [`crate::lexer::strip`]). Returns the tokens plus a matching-delimiter
/// index: `match_idx[i]` is the partner of an `Open`/`Close` token at `i`
/// (or `i` itself for unmatched delimiters and non-delimiters, so jumps
/// on malformed input degrade to no-ops instead of panics).
pub fn tokenize(masked: &str) -> (Vec<Tok>, Vec<usize>) {
    let b = masked.as_bytes();
    let mut toks: Vec<Tok> = Vec::with_capacity(b.len() / 4);
    let mut line = 1u32;
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if c.is_ascii_alphanumeric() || c == b'_' {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text: masked[start..i].to_string(),
                line,
                off: start as u32,
            });
            continue;
        }
        let kind = match c {
            b'(' | b'[' | b'{' => TokKind::Open,
            b')' | b']' | b'}' => TokKind::Close,
            _ => TokKind::Punct,
        };
        toks.push(Tok {
            kind,
            text: (c as char).to_string(),
            line,
            off: i as u32,
        });
        i += 1;
    }

    let mut match_idx: Vec<usize> = (0..toks.len()).collect();
    let mut stack: Vec<(usize, u8)> = Vec::new();
    for (idx, t) in toks.iter().enumerate() {
        match t.kind {
            TokKind::Open => stack.push((idx, t.text.as_bytes()[0])),
            TokKind::Close => {
                let want = match t.text.as_bytes()[0] {
                    b')' => b'(',
                    b']' => b'[',
                    _ => b'{',
                };
                // Pop through mismatched opens (malformed input from a
                // half-edited file) rather than corrupting the pairing.
                while let Some((oi, oc)) = stack.pop() {
                    if oc == want {
                        match_idx[oi] = idx;
                        match_idx[idx] = oi;
                        break;
                    }
                }
            }
            _ => {}
        }
    }
    (toks, match_idx)
}

/// A `struct` item with its named fields (tuple and unit structs record
/// an empty field list).
#[derive(Debug, Clone)]
pub struct StructItem {
    pub name: String,
    pub fields: Vec<String>,
    pub line: u32,
}

/// A `fn` item with enough context for the semantic packs.
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// Self type of the enclosing `impl` block, if any.
    pub impl_type: Option<String>,
    pub line: u32,
    /// Token indices of the body's `{` and `}` (absent for trait method
    /// declarations and extern fns).
    pub body: Option<(usize, usize)>,
    /// Inside `#[cfg(test)]` / `#[test]` scope (or a `tests/` file —
    /// callers overlay path knowledge).
    pub in_test: bool,
}

/// Per-file symbol table: the token stream plus every struct and fn.
#[derive(Debug)]
pub struct FileModel {
    /// Repo-relative `/`-separated path.
    pub path: String,
    pub toks: Vec<Tok>,
    pub match_idx: Vec<usize>,
    pub structs: Vec<StructItem>,
    pub fns: Vec<FnItem>,
}

/// All files of one crate (keyed by path prefix), forming the unit the
/// intra-crate call graph is resolved over.
#[derive(Debug)]
pub struct CrateModel {
    /// Path prefix identifying the crate (e.g. `crates/simdfs`).
    pub root: String,
    pub files: Vec<FileModel>,
}

impl CrateModel {
    /// Looks up a struct by name anywhere in the crate.
    pub fn find_struct(&self, name: &str) -> Option<&StructItem> {
        self.files
            .iter()
            .flat_map(|f| f.structs.iter())
            .find(|s| s.name == name)
    }

    /// Whether `fn_name` (restricted to `impl impl_type` when given)
    /// reaches any of `targets` through same-crate calls, following
    /// `self.`/bare-call edges up to `depth` hops. The walk is
    /// conservative: calls it cannot resolve are ignored, so an
    /// unreachable verdict may be a resolution gap — rules treat that as
    /// a finding to pragma-document, never as silent acceptance.
    pub fn reaches(
        &self,
        impl_type: Option<&str>,
        fn_name: &str,
        targets: &BTreeSet<&str>,
        depth: usize,
    ) -> bool {
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut frontier: Vec<String> = vec![fn_name.to_string()];
        for _ in 0..=depth {
            let mut next = Vec::new();
            for name in frontier.drain(..) {
                if targets.contains(name.as_str()) {
                    return true;
                }
                if !seen.insert(name.clone()) {
                    continue;
                }
                for f in &self.files {
                    for func in &f.fns {
                        if func.name != name {
                            continue;
                        }
                        if let (Some(want), Some(have)) = (impl_type, func.impl_type.as_deref()) {
                            if want != have {
                                continue;
                            }
                        }
                        let Some((open, close)) = func.body else {
                            continue;
                        };
                        let facts = BodyFacts::extract(f, open, close);
                        for call in &facts.calls {
                            let local = call.segs.len() == 1
                                || call.segs.first().map(String::as_str) == Some("self");
                            if local {
                                next.push(call.segs.last().expect("call has a name").clone());
                            }
                        }
                    }
                }
            }
            if next.is_empty() {
                return false;
            }
            frontier = next;
        }
        false
    }
}

/// A field/method access chain, root first: `self.cluster.storage
/// .get_mut(&id).unwrap().volumes[0].used += 1` becomes
/// `[self, cluster, storage, get_mut, unwrap, volumes, used]` with
/// `op = "+="`. Index expressions contribute no segment.
#[derive(Debug, Clone)]
pub struct Chain {
    pub segs: Vec<String>,
    /// `=`, compound assignment, or the mutating method name.
    pub op: String,
    pub line: u32,
}

impl Chain {
    /// Whether `a` appears in the chain with `b` somewhere after it.
    pub fn has_pair(&self, a: &str, b: &str) -> bool {
        self.segs
            .iter()
            .position(|s| s == a)
            .is_some_and(|i| self.segs[i + 1..].iter().any(|s| s == b))
    }

    /// Whether the chain ends with a write to field `f` (assignment ops
    /// only, not mutating method calls).
    pub fn writes_field(&self, f: &str) -> bool {
        self.op.ends_with('=') && self.segs.last().is_some_and(|s| s == f)
    }
}

/// A `let`-bound lock guard and the block scope it lives to the end of.
#[derive(Debug, Clone)]
pub struct LockBind {
    /// Token index of the `lock` identifier.
    pub tok: usize,
    /// Token index of the `}` closing the guard's enclosing block (body
    /// close for top-level statements).
    pub scope_end: usize,
    pub line: u32,
}

/// Container/entry methods treated as mutable access when they terminate
/// a chain (writes *through* them are invisible to the flat model, so the
/// access itself is the auditable event).
const MUT_METHODS: &[&str] = &[
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "clear",
    "drain",
    "retain",
    "swap_remove",
    "truncate",
    "extend",
    "entry",
    "take",
    "replace",
    "push_front",
    "push_back",
    "pop_front",
    "pop_back",
];

/// Keywords never recorded as call names.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "let", "fn",
    "pub", "impl", "struct", "enum", "trait", "mod", "use", "crate", "super", "where", "as", "in",
    "ref", "mut", "move", "dyn", "unsafe", "async", "await", "const", "static", "type",
];

/// Facts extracted from one fn body's token slice.
#[derive(Debug, Default)]
pub struct BodyFacts {
    /// Call sites, each with its receiver chain (last segment is the
    /// callee name; bare calls have a single segment).
    pub calls: Vec<Chain>,
    /// Field-write chains (`=` and compound assignments) plus chains
    /// ending in a mutating container method.
    pub chains: Vec<Chain>,
    /// `let`-bound `.lock()` guards with their live scope.
    pub locks: Vec<LockBind>,
    /// Every identifier in the body (cheap membership probes).
    pub idents: BTreeSet<String>,
}

impl BodyFacts {
    /// Extracts facts from the body delimited by token indices
    /// `(open, close)` (the `{`/`}` pair of [`FnItem::body`]).
    pub fn extract(file: &FileModel, open: usize, close: usize) -> BodyFacts {
        let toks = &file.toks;
        let mut facts = BodyFacts::default();
        let mut i = open + 1;
        while i < close {
            let t = &toks[i];
            if t.kind == TokKind::Ident {
                facts.idents.insert(t.text.clone());
                // Call site: ident directly followed by `(` (methods are
                // distinguished by a preceding `.`).
                if toks
                    .get(i + 1)
                    .is_some_and(|n| n.is("(") && n.kind == TokKind::Open)
                    && !KEYWORDS.contains(&t.text.as_str())
                {
                    let mut segs = walk_chain_back(toks, file, i.saturating_sub(1), open);
                    segs.push(t.text.clone());
                    if t.text == "lock" {
                        facts.locks.extend(lock_binding(file, i, open, close));
                    }
                    if MUT_METHODS.contains(&t.text.as_str()) && segs.len() > 1 {
                        facts.chains.push(Chain {
                            segs: segs.clone(),
                            op: t.text.clone(),
                            line: t.line,
                        });
                    }
                    facts.calls.push(Chain {
                        segs,
                        op: t.text.clone(),
                        line: t.line,
                    });
                }
            } else if t.kind == TokKind::Punct
                && is_write_op(toks, i)
                && !is_let_init(file, i, open)
            {
                let op = write_op_text(toks, i);
                let start = if op == "=" { i } else { i - 1 };
                let segs = walk_chain_back(toks, file, start.saturating_sub(1), open);
                if !segs.is_empty() {
                    facts.chains.push(Chain {
                        segs,
                        op,
                        line: t.line,
                    });
                }
            }
            i += 1;
        }
        facts
    }
}

/// Whether the punct at `i` is the `=` of an assignment (plain or the
/// tail of a fused compound operator). `==`, `!=`, `<=`, `>=`, `=>` and
/// `..=` are excluded; `<<=`/`>>=` are not recognized (shift-assignment
/// does not occur in the audited state paths).
fn is_write_op(toks: &[Tok], i: usize) -> bool {
    if !toks[i].is("=") {
        return false;
    }
    // `==` / `=>` (look right, adjacency required for fusion).
    if let Some(n) = toks.get(i + 1) {
        if (n.is("=") || n.is(">")) && n.off == toks[i].end() {
            return false;
        }
    }
    // Fused left neighbor decides comparison vs compound assignment.
    if i > 0 && toks[i - 1].kind == TokKind::Punct && toks[i - 1].end() == toks[i].off {
        let p = toks[i - 1].text.as_bytes()[0];
        return matches!(p, b'+' | b'-' | b'*' | b'/' | b'%' | b'&' | b'|' | b'^');
    }
    true
}

/// Whether the write op at `i` initializes a `let` binding (`let x =`,
/// `let mut x: T =`): an initialization, not a mutation of existing
/// state. Scans back to the statement boundary, hopping over delimiter
/// groups so a `let` inside a nested index expression is not mistaken
/// for the statement's own.
fn is_let_init(file: &FileModel, op: usize, floor: usize) -> bool {
    let toks = &file.toks;
    let mut j = op;
    while j > floor {
        j -= 1;
        match toks[j].kind {
            TokKind::Close => {
                let o = file.match_idx[j];
                if o < j {
                    j = o;
                }
            }
            TokKind::Open => return false, // statement starts inside this group
            TokKind::Punct if toks[j].is(";") => return false,
            TokKind::Ident if toks[j].is("let") => return true,
            _ => {}
        }
    }
    false
}

/// The operator text for a write op at `i` (`=` or e.g. `+=`).
fn write_op_text(toks: &[Tok], i: usize) -> String {
    if i > 0 && toks[i - 1].kind == TokKind::Punct && toks[i - 1].end() == toks[i].off {
        let p = toks[i - 1].text.as_bytes()[0];
        if matches!(p, b'+' | b'-' | b'*' | b'/' | b'%' | b'&' | b'|' | b'^') {
            return format!("{}=", p as char);
        }
    }
    "=".to_string()
}

/// Walks an access chain backwards from token index `from` (inclusive),
/// collecting identifier segments through `.field`, `.method(...)` and
/// `[index]` links until the chain root. Returns segments root-first.
/// `floor` bounds the walk to the current body.
fn walk_chain_back(toks: &[Tok], file: &FileModel, mut from: usize, floor: usize) -> Vec<String> {
    let mut rev: Vec<String> = Vec::new();
    loop {
        if from <= floor {
            break;
        }
        let t = &toks[from];
        match t.kind {
            TokKind::Punct if t.is(".") && from > floor => {
                from -= 1;
                continue;
            }
            TokKind::Ident => {
                rev.push(t.text.clone());
                // Continue only through a `.` link.
                if from >= 1 && toks[from - 1].is(".") {
                    from -= 2;
                    // Tuple-index links (`pair.0.used`): the numeric
                    // segment was just pushed; nothing special needed.
                    continue;
                }
                break;
            }
            TokKind::Close => {
                // `)` of a call or `]` of an index: jump to the matching
                // open and look at what precedes it.
                let o = file.match_idx[from];
                if o >= from || o <= floor {
                    break;
                }
                if t.is("]") {
                    // Index expression: contributes no segment.
                    from = o - 1;
                    continue;
                }
                // Call arguments: the callee ident sits before the open.
                from = o.saturating_sub(1);
                continue;
            }
            _ => break,
        }
    }
    rev.reverse();
    rev
}

/// If the `lock` call at token `i` sits in a `let` statement, returns a
/// [`LockBind`] whose scope runs to the end of the *statement's*
/// enclosing block; transient guards (no `let`, dropped at the `;`) and
/// locks buried in a nested block of the statement (their guard dies
/// when that block ends) return nothing.
fn lock_binding(file: &FileModel, i: usize, open: usize, close: usize) -> Option<LockBind> {
    let toks = &file.toks;
    // Find the innermost enclosing brace block within the body.
    let mut block_open = open;
    let mut j = i;
    let mut depth = 0i32;
    while j > open {
        j -= 1;
        match toks[j].kind {
            TokKind::Close => depth += 1,
            TokKind::Open => {
                if depth == 0 {
                    if toks[j].is("{") {
                        block_open = j;
                        break;
                    }
                    // Inside parens/brackets: hop out and keep looking.
                } else {
                    depth -= 1;
                }
                if depth < 0 {
                    depth = 0;
                }
            }
            _ => {}
        }
    }
    let block_close = if block_open == open {
        close
    } else {
        file.match_idx[block_open]
    };
    // Statement start: token after the previous `;` (or the block open)
    // at this block's level.
    let mut start = block_open + 1;
    let mut k = block_open + 1;
    while k < i {
        match toks[k].kind {
            TokKind::Open => k = file.match_idx[k].max(k), // skip nested
            TokKind::Punct if toks[k].is(";") => start = k + 1,
            _ => {}
        }
        k += 1;
    }
    if toks.get(start).is_some_and(|t| t.is("let")) {
        Some(LockBind {
            tok: i,
            scope_end: block_close,
            line: toks[i].line,
        })
    } else {
        None
    }
}

/// Parses one masked file into a [`FileModel`].
pub fn parse_file(path: &str, masked: &str) -> FileModel {
    let (toks, match_idx) = tokenize(masked);
    let mut model = FileModel {
        path: path.to_string(),
        toks,
        match_idx,
        structs: Vec::new(),
        fns: Vec::new(),
    };
    let in_tests_dir = path.contains("/tests/") || path.starts_with("tests/");
    let end = model.toks.len();
    walk_items(&mut model, 0, end, None, in_tests_dir);
    model
}

/// Item-level walk of `toks[range]`. Descends into `impl` and `mod`
/// blocks; fn bodies are recorded but not descended into (nested fns
/// fold into their parent's body facts).
fn walk_items(
    model: &mut FileModel,
    mut i: usize,
    end: usize,
    impl_type: Option<&str>,
    in_test: bool,
) {
    let mut attr_test = false;
    while i < end {
        let (kind, text, line) = {
            let t = &model.toks[i];
            (t.kind, t.text.clone(), t.line)
        };
        // Attributes: `#[...]` — note test markers, then skip.
        if kind == TokKind::Punct && text == "#" {
            if let Some(open) = model
                .toks
                .get(i + 1)
                .filter(|t| t.is("[") && t.kind == TokKind::Open)
                .map(|_| i + 1)
            {
                let close = model.match_idx[open];
                if close > open {
                    attr_test |= model.toks[open..close].iter().any(|t| t.is("test"));
                    i = close + 1;
                    continue;
                }
            }
            i += 1;
            continue;
        }
        if kind != TokKind::Ident {
            // `!` after an ident was already consumed with the item scan;
            // stray puncts at item level are separators.
            if kind == TokKind::Open {
                // A brace we did not classify (e.g. trait body we skip):
                // jump over it wholesale.
                i = model.match_idx[i].max(i) + 1;
                attr_test = false;
                continue;
            }
            i += 1;
            continue;
        }
        match text.as_str() {
            "fn" => {
                let name = match model.toks.get(i + 1) {
                    Some(t) if t.kind == TokKind::Ident => t.text.clone(),
                    _ => {
                        i += 1;
                        continue;
                    }
                };
                // Scan for the body `{` or a `;`, hopping over any
                // parenthesized/bracketed groups (argument lists, array
                // types); `{` cannot occur inside them at item level.
                let mut j = i + 2;
                let mut body = None;
                while j < end {
                    match model.toks[j].kind {
                        TokKind::Open if model.toks[j].is("{") => {
                            body = Some((j, model.match_idx[j]));
                            break;
                        }
                        TokKind::Open => {
                            j = model.match_idx[j].max(j) + 1;
                        }
                        TokKind::Punct if model.toks[j].is(";") => break,
                        _ => j += 1,
                    }
                }
                model.fns.push(FnItem {
                    name,
                    impl_type: impl_type.map(str::to_string),
                    line,
                    body,
                    in_test: in_test || attr_test,
                });
                i = match body {
                    Some((_, c)) if c > i => c + 1,
                    _ => j + 1,
                };
                attr_test = false;
            }
            "impl" => {
                // Optional generics after `impl`: skip a balanced `<...>`
                // run (no braces occur inside item-level generics).
                let mut j = i + 1;
                if model.toks.get(j).is_some_and(|t| t.is("<")) {
                    let mut angle = 0i32;
                    while j < end {
                        if model.toks[j].is("<") {
                            angle += 1;
                        } else if model.toks[j].is(">") {
                            angle -= 1;
                            if angle == 0 {
                                j += 1;
                                break;
                            }
                        }
                        j += 1;
                    }
                }
                // Collect the header up to `{`; the self type is the
                // last path segment before any generic args, taken from
                // the `for` side when present.
                let mut hdr_end = j;
                while hdr_end < end && !model.toks[hdr_end].is("{") {
                    if model.toks[hdr_end].kind == TokKind::Open {
                        hdr_end = model.match_idx[hdr_end].max(hdr_end);
                    }
                    hdr_end += 1;
                }
                let hdr: Vec<usize> = (j..hdr_end).collect();
                let after_for = hdr
                    .iter()
                    .position(|&k| model.toks[k].is("for"))
                    .map(|p| p + 1)
                    .unwrap_or(0);
                let mut self_ty: Option<String> = None;
                for &k in &hdr[after_for..] {
                    let t = &model.toks[k];
                    if t.is("<") || t.is("where") {
                        break;
                    }
                    if t.kind == TokKind::Ident
                        && !matches!(t.text.as_str(), "dyn" | "mut" | "for" | "crate" | "super")
                    {
                        self_ty = Some(t.text.clone());
                    }
                }
                if hdr_end < end && model.toks[hdr_end].is("{") {
                    let close = model.match_idx[hdr_end];
                    walk_items(model, hdr_end + 1, close, self_ty.as_deref(), in_test);
                    i = close + 1;
                } else {
                    i = hdr_end + 1;
                }
                attr_test = false;
            }
            "mod" => {
                let mod_test = attr_test;
                let mut j = i + 1;
                while j < end && !model.toks[j].is("{") && !model.toks[j].is(";") {
                    j += 1;
                }
                if j < end && model.toks[j].is("{") {
                    let close = model.match_idx[j];
                    walk_items(model, j + 1, close, impl_type, in_test || mod_test);
                    i = close + 1;
                } else {
                    i = j + 1;
                }
                attr_test = false;
            }
            "struct" => {
                let name = match model.toks.get(i + 1) {
                    Some(t) if t.kind == TokKind::Ident => t.text.clone(),
                    _ => {
                        i += 1;
                        continue;
                    }
                };
                let mut j = i + 2;
                let mut fields = Vec::new();
                while j < end {
                    match model.toks[j].kind {
                        TokKind::Punct if model.toks[j].is(";") => {
                            j += 1;
                            break;
                        }
                        TokKind::Open if model.toks[j].is("(") => {
                            // Tuple struct: skip to the `;`.
                            j = model.match_idx[j].max(j) + 1;
                        }
                        TokKind::Open if model.toks[j].is("{") => {
                            let close = model.match_idx[j];
                            fields = parse_fields(model, j + 1, close);
                            j = close + 1;
                            break;
                        }
                        TokKind::Open => j = model.match_idx[j].max(j) + 1,
                        _ => j += 1,
                    }
                }
                model.structs.push(StructItem { name, fields, line });
                i = j;
                attr_test = false;
            }
            // Items we do not model: skip to their end so their contents
            // cannot masquerade as top-level tokens.
            "enum" | "trait" | "union" => {
                let mut j = i + 1;
                while j < end && !model.toks[j].is("{") && !model.toks[j].is(";") {
                    if model.toks[j].kind == TokKind::Open {
                        j = model.match_idx[j].max(j);
                    }
                    j += 1;
                }
                if j < end && model.toks[j].is("{") {
                    i = model.match_idx[j].max(j) + 1;
                } else {
                    i = j + 1;
                }
                attr_test = false;
            }
            _ => i += 1,
        }
    }
}

/// Parses named struct fields between brace tokens: each field is
/// `[attrs] [pub[(scope)]] name : type`, comma-separated.
fn parse_fields(model: &FileModel, mut i: usize, end: usize) -> Vec<String> {
    let mut fields = Vec::new();
    while i < end {
        // Skip attributes and visibility.
        if model.toks[i].is("#") {
            if let Some(t) = model.toks.get(i + 1) {
                if t.is("[") {
                    i = model.match_idx[i + 1].max(i + 1) + 1;
                    continue;
                }
            }
        }
        if model.toks[i].is("pub") {
            i += 1;
            if i < end && model.toks[i].is("(") {
                i = model.match_idx[i].max(i) + 1;
            }
            continue;
        }
        if model.toks[i].kind == TokKind::Ident && model.toks.get(i + 1).is_some_and(|t| t.is(":"))
        {
            fields.push(model.toks[i].text.clone());
            // Skip the type to the next comma at this level.
            i += 2;
            while i < end && !model.toks[i].is(",") {
                if model.toks[i].kind == TokKind::Open {
                    i = model.match_idx[i].max(i);
                }
                i += 1;
            }
            i += 1;
            continue;
        }
        i += 1;
    }
    fields
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::strip;

    fn model(src: &str) -> FileModel {
        parse_file("crates/simdfs/src/x.rs", &strip(src).masked)
    }

    #[test]
    fn tokenizer_matches_delimiters() {
        let (toks, mi) = tokenize("fn f(a: u8) { g([1, 2]); }");
        let open_brace = toks.iter().position(|t| t.is("{")).unwrap();
        assert!(toks[mi[open_brace]].is("}"));
        let open_bracket = toks.iter().position(|t| t.is("[")).unwrap();
        assert!(toks[mi[open_bracket]].is("]"));
    }

    #[test]
    fn parses_fns_with_impl_context() {
        let m = model(
            "struct Cluster { files: u8, used: u64 }\n\
             impl Cluster {\n    pub fn store(&mut self) { self.touch(1); }\n}\n\
             impl std::fmt::Display for Cluster { fn fmt(&self) {} }\n\
             fn free() {}\n",
        );
        assert_eq!(m.structs.len(), 1);
        assert_eq!(m.structs[0].fields, vec!["files", "used"]);
        let names: Vec<(&str, Option<&str>)> = m
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.impl_type.as_deref()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("store", Some("Cluster")),
                ("fmt", Some("Cluster")),
                ("free", None)
            ]
        );
    }

    #[test]
    fn generic_impl_headers_resolve_the_self_type() {
        let m = model("impl<'a, T: Clone> Holder<T> { fn get(&self) {} }");
        assert_eq!(m.fns[0].impl_type.as_deref(), Some("Holder"));
    }

    #[test]
    fn cfg_test_modules_and_test_attrs_mark_fns() {
        let m = model(
            "fn live() {}\n\
             #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {}\n    fn helper() {}\n}\n",
        );
        let by_name = |n: &str| m.fns.iter().find(|f| f.name == n).unwrap();
        assert!(!by_name("live").in_test);
        assert!(by_name("t").in_test);
        assert!(by_name("helper").in_test);
    }

    #[test]
    fn body_facts_extract_calls_and_write_chains() {
        let m = model(
            "impl Cluster { fn f(&mut self) {\n\
                self.cluster.storage.get_mut(&id).unwrap().volumes[0].used += 1;\n\
                let x = a == b; let y = c <= d; m.insert(k, v);\n\
                self.touch_volume(vol);\n\
             } }",
        );
        let (o, c) = m.fns[0].body.unwrap();
        let facts = BodyFacts::extract(&m, o, c);
        let w = facts
            .chains
            .iter()
            .find(|ch| ch.op == "+=")
            .expect("write chain found");
        assert_eq!(
            w.segs,
            vec!["self", "cluster", "storage", "get_mut", "unwrap", "volumes", "used"]
        );
        assert!(w.has_pair("storage", "get_mut"));
        assert!(w.writes_field("used"));
        assert!(facts
            .calls
            .iter()
            .any(|ch| ch.segs == ["self", "touch_volume"]));
        assert!(facts
            .chains
            .iter()
            .any(|ch| ch.op == "insert" && ch.segs == ["m", "insert"]));
        // `==` and `<=` are not writes.
        assert!(!facts
            .chains
            .iter()
            .any(|ch| ch.segs.last().is_some_and(|s| s == "x")));
    }

    #[test]
    fn lock_bindings_scope_to_their_block() {
        let m = model(
            "fn f(&self) {\n\
                let batch = {\n    let victim = self.inner.lock().unwrap();\n    take(victim)\n};\n\
                let own = dest.inner.lock().unwrap();\n\
                other.inner.lock().unwrap().push(1);\n\
             }",
        );
        let (o, c) = m.fns[0].body.unwrap();
        let facts = BodyFacts::extract(&m, o, c);
        // Two let-bound guards; the transient third is not a binding.
        assert_eq!(facts.locks.len(), 2);
        // The inner guard's scope closes before the second binding.
        assert!(facts.locks[0].scope_end < facts.locks[1].tok);
    }

    #[test]
    fn call_graph_reaches_hooks_transitively() {
        let m = model(
            "impl Cluster {\n\
               fn deep(&mut self) { self.middle(); }\n\
               fn middle(&mut self) { self.touch_volume(v); }\n\
               fn touch_volume(&mut self, v: u8) {}\n\
             }",
        );
        let cm = CrateModel {
            root: "crates/simdfs".to_string(),
            files: vec![m],
        };
        let targets: BTreeSet<&str> = ["touch_volume"].into_iter().collect();
        assert!(cm.reaches(Some("Cluster"), "deep", &targets, 4));
        assert!(!cm.reaches(Some("Cluster"), "deep", &targets, 0));
    }
}
