//! Semantic rule packs: contract proofs over the syntax model.
//!
//! The lexical rules catch *forbidden constructs*; these packs prove
//! *required structure* — the three runtime contracts the reproduction's
//! replay guarantees rest on, checked at lint time instead of waiting for
//! the state auditor or a proptest to trip at runtime:
//!
//! * **journal-coverage** — every write to journaled state (`Cluster`'s
//!   node/volume/file tables, `Namespace`, `UtilTracker`) happens inside
//!   the owning impl, whose journaling accessors and wholesale-checkpoint
//!   machinery cover it. A write from anywhere else bypasses the
//!   fork/restore undo log and silently corrupts snapshot replay.
//! * **tracker-completeness** — every `Cluster` mutation that can move a
//!   node's utilization or eligibility routes through the `UtilTracker`
//!   maintenance hooks (`touch_volume` / `refresh_node_stats` /
//!   `end_bulk_load`), directly or through the intra-crate call graph.
//!   This is the drift class the runtime auditor finds only when it
//!   fires; here it is refused at lint time.
//! * **crash-decomposition** — a `DfsSim` fn that performs two or more
//!   cluster/namespace mutations across an RPC/clock boundary is a
//!   multi-step crash window. It must decompose into registered crash
//!   points (reach `crash_point` on the call graph) or carry a reasoned
//!   pragma stating the atomic-window assumption (ROADMAP item 5 tracks
//!   the create/delete/heal remainder).
//! * **steal-protocol** — the grid's work-stealing discipline: no
//!   single-task `steal()` (half-batch steals keep schedules
//!   reproducible), every `steal_batch_and_pop` caller handles
//!   `Steal::Retry`, and no two deque lock guards overlap (the two-phase
//!   rule that makes concurrent A↔B steals deadlock-free).
//!
//! Every pack reports through the same diagnostics/pragma/JSON machinery
//! as the lexical rules; `detlint:allow(<pack>)` with a mandatory reason
//! is the escape hatch, and unused allows are themselves flagged.

use crate::rules::Severity;
use crate::syntax::{BodyFacts, Chain, CrateModel};
use std::collections::BTreeSet;

/// A semantic finding before pragma filtering (the driver resolves
/// suppressions, excerpts and report plumbing).
#[derive(Debug, Clone)]
pub struct SemFinding {
    pub rule: &'static str,
    pub severity: Severity,
    pub file: String,
    pub line: usize,
    pub message: String,
}

/// Registration record for a semantic pack (referenced by pragma hygiene
/// and `--list-rules`; patterns live in code, not tables).
#[derive(Debug)]
pub struct SemRule {
    pub id: &'static str,
    pub severity: Severity,
    pub summary: &'static str,
}

/// The semantic rule packs, in reporting order.
pub const SEM_RULES: &[SemRule] = &[
    SemRule {
        id: "journal-coverage",
        severity: Severity::Deny,
        summary: "writes to journaled state (Cluster/Namespace tables, UtilTracker) \
                  must stay inside the owning impl's journaled accessors",
    },
    SemRule {
        id: "tracker-completeness",
        severity: Severity::Deny,
        summary: "Cluster mutations of used/capacity/online/volume membership must \
                  reach a UtilTracker maintenance hook on the call graph",
    },
    SemRule {
        id: "crash-decomposition",
        severity: Severity::Deny,
        summary: "multi-mutation DfsSim fns crossing an RPC/clock boundary must \
                  register crash-point micro-steps or document the atomic window",
    },
    SemRule {
        id: "steal-protocol",
        severity: Severity::Deny,
        summary: "grid stealing must batch (no single steal), handle Steal::Retry, \
                  and never hold two deque locks at once",
    },
];

/// Looks up a semantic pack by id.
pub fn find(id: &str) -> Option<&'static SemRule> {
    SEM_RULES.iter().find(|r| r.id == id)
}

/// Runs every pack over one crate model, appending findings. Findings are
/// deduplicated per `(rule, file, line)`: one statement can produce
/// several offending chains (a `get_mut` link and the final field write),
/// but it is one defect at one location.
pub fn run_packs(cm: &CrateModel, out: &mut Vec<SemFinding>) {
    let mut found = Vec::new();
    journal_coverage(cm, &mut found);
    tracker_completeness(cm, &mut found);
    crash_decomposition(cm, &mut found);
    steal_protocol(cm, &mut found);
    found.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
    found.dedup_by(|a, b| a.rule == b.rule && a.file == b.file && a.line == b.line);
    out.append(&mut found);
}

/// Path scope shared by the state-contract packs (mirrors the lexical
/// `STATE_PATHS_AND_BENCH` scope: everything that can reach simulated
/// state, including examples and integration tests).
fn in_state_scope(path: &str) -> bool {
    const SCOPES: &[&str] = &[
        "crates/simdfs",
        "crates/themis",
        "crates/adaptors",
        "crates/workload",
        "crates/bench",
        "src",
        "tests",
        "examples",
    ];
    SCOPES
        .iter()
        .any(|p| path == *p || (path.starts_with(p) && path.as_bytes().get(p.len()) == Some(&b'/')))
}

/// Structs owning journaled state: writes through their fields are only
/// legal inside these impls (journaling accessors + wholesale-checkpoint
/// machinery live there; `tracker-completeness` polices `Cluster` from
/// the inside).
const OWNING_IMPLS: &[&str] = &[
    "Cluster",
    "Namespace",
    "NodeArena",
    "UtilTracker",
    "VolumeDirectory",
];

/// Journaled-state fields: a mutation chain traversing one of these
/// (`…storage.get_mut(…)…`, `…util_stats.update(…)`) is a journaled-state
/// write. Field names are cross-checked against the symbol table when the
/// owning struct is in the scanned crate, so a rename breaks the lint
/// loudly instead of silently un-scoping it.
const JOURNALED_FIELDS: &[(&str, &str)] = &[
    ("Cluster", "storage"),
    ("Cluster", "mgmt"),
    ("Cluster", "files"),
    ("Cluster", "volume_owner"),
    ("Cluster", "util_stats"),
    ("Cluster", "views_cache"),
    ("Cluster", "view_index"),
];

/// Whether a chain mutates through a journaled field: the field appears
/// as a non-final segment (something is written or mutably accessed
/// deeper than it) *with a receiver in front of it* — a bare
/// `storage.push(…)` is a local variable, not `Cluster` state.
fn chain_hits_journaled(chain: &Chain) -> bool {
    chain.segs.iter().enumerate().any(|(i, s)| {
        i >= 1 && i + 1 < chain.segs.len() && JOURNALED_FIELDS.iter().any(|(_, f)| f == s)
    })
}

/// Whether a file/chain is plausibly about `Cluster` state at all: the
/// field names above are generic (`files`, `storage`), so outside the
/// crate that defines `Cluster` the chain must go through a `cluster`
/// receiver — `model.files` in the themis harness or an example's own
/// `files` map is that struct's business, not journaled sim state.
fn in_cluster_context(path: &str, chain: &Chain) -> bool {
    path.starts_with("crates/simdfs/") || chain.segs.iter().any(|s| s == "cluster")
}

fn journal_coverage(cm: &CrateModel, out: &mut Vec<SemFinding>) {
    // Symbol-table cross-check: if the crate defines one of the owning
    // structs, every configured field must still exist — a silent rename
    // would otherwise un-scope the rule.
    for owner in ["Cluster"] {
        if let Some(st) = cm.find_struct(owner) {
            for (o, f) in JOURNALED_FIELDS {
                if o == &owner && !st.fields.iter().any(|x| x == f) {
                    out.push(SemFinding {
                        rule: "journal-coverage",
                        severity: Severity::Deny,
                        file: cm
                            .files
                            .iter()
                            .find(|fm| fm.structs.iter().any(|s| s.name == owner))
                            .map(|fm| fm.path.clone())
                            .unwrap_or_default(),
                        line: st.line as usize,
                        message: format!(
                            "journal-coverage config names `{owner}::{f}` but the struct \
                             no longer has that field; update JOURNALED_FIELDS so the \
                             contract keeps covering the renamed state"
                        ),
                    });
                }
            }
        }
    }
    for fm in &cm.files {
        if !in_state_scope(&fm.path) {
            continue;
        }
        for f in &fm.fns {
            if f.impl_type
                .as_deref()
                .is_some_and(|t| OWNING_IMPLS.contains(&t))
                && !f.in_test
            {
                continue;
            }
            let Some((open, close)) = f.body else {
                continue;
            };
            let facts = BodyFacts::extract(fm, open, close);
            for ch in &facts.chains {
                if chain_hits_journaled(ch) && in_cluster_context(&fm.path, ch) {
                    out.push(SemFinding {
                        rule: "journal-coverage",
                        severity: Severity::Deny,
                        file: fm.path.clone(),
                        line: ch.line as usize,
                        message: format!(
                            "`{}` writes journaled state (`{}`) outside its owning impl: \
                             the mutation bypasses the fork/restore undo journal — route \
                             it through the journaled accessors, or pragma-document \
                             deliberate corruption (auditor tests)",
                            f.name,
                            ch.segs.join(".")
                        ),
                    });
                }
            }
        }
    }
}

/// UtilTracker maintenance hooks: reaching one of these on the call graph
/// proves the streaming stats follow the mutation.
const TRACKER_HOOKS: &[&str] = &["touch_volume", "refresh_node_stats", "end_bulk_load"];

/// Speculative-view infrastructure: these write only the cached planning
/// views (rolled back exactly by the planner), never tracked state.
const VIEW_INFRA: &[&str] = &["bump_view_used", "set_view_used", "sync_view_used"];

/// Whether a chain mutates tracker-relevant state: node fill, capacity,
/// eligibility, or volume/node membership. Field writes need a receiver
/// (`v.used = …`); a bare `online += 1` is a local counter.
fn chain_hits_tracked(chain: &Chain) -> bool {
    let field_write = |f: &str| chain.segs.len() >= 2 && chain.writes_field(f);
    field_write("used")
        || field_write("capacity")
        || field_write("online")
        || [
            "push",
            "remove",
            "retain",
            "clear",
            "swap_remove",
            "truncate",
            "pop",
        ]
        .iter()
        .any(|m| chain.has_pair("volumes", m))
        || chain.has_pair("storage", "insert")
        || chain.has_pair("storage", "remove")
}

fn tracker_completeness(cm: &CrateModel, out: &mut Vec<SemFinding>) {
    let hooks: BTreeSet<&str> = TRACKER_HOOKS.iter().copied().collect();
    for fm in &cm.files {
        if !fm.path.starts_with("crates/simdfs/src/") {
            continue;
        }
        for f in &fm.fns {
            if f.impl_type.as_deref() != Some("Cluster") || f.in_test {
                continue;
            }
            if TRACKER_HOOKS.contains(&f.name.as_str()) || VIEW_INFRA.contains(&f.name.as_str()) {
                continue;
            }
            let Some((open, close)) = f.body else {
                continue;
            };
            let facts = BodyFacts::extract(fm, open, close);
            let hit = facts.chains.iter().find(|ch| chain_hits_tracked(ch));
            let Some(ch) = hit else { continue };
            // Direct tracker maintenance (`self.util_stats.update(…)`) is
            // as good as a hook; so is reaching one transitively.
            let touches_tracker = facts
                .calls
                .iter()
                .chain(facts.chains.iter())
                .any(|c| c.segs.iter().any(|s| s == "util_stats"));
            if touches_tracker || cm.reaches(Some("Cluster"), &f.name, &hooks, 3) {
                continue;
            }
            out.push(SemFinding {
                rule: "tracker-completeness",
                severity: Severity::Deny,
                file: fm.path.clone(),
                line: ch.line as usize,
                message: format!(
                    "`Cluster::{}` mutates tracked state (`{} {}`) but reaches no \
                     UtilTracker hook (touch_volume / refresh_node_stats / \
                     end_bulk_load): the streaming variance drifts until the runtime \
                     auditor fires — call a hook, or pragma-document why a caller \
                     compensates",
                    f.name,
                    ch.segs.join("."),
                    ch.op
                ),
            });
        }
    }
}

/// Cluster mutations that move bytes, topology or liveness (counted as
/// crash-window steps when performed on `self.cluster`).
const CLUSTER_MUTS: &[&str] = &[
    "store",
    "free_file",
    "migrate",
    "migrate_copy",
    "migrate_rollback_copy",
    "migrate_commit_swap",
    "migrate_commit_account",
    "rescale_file",
    "add_storage",
    "remove_storage",
    "add_mgmt",
    "remove_mgmt",
    "add_volume",
    "remove_volume",
    "expand_volume",
    "reduce_volume",
    "set_offline",
    "set_online",
    "set_volumes_full",
    "file_mut",
];

/// Namespace mutations (performed on `self.ns`).
const NS_MUTS: &[&str] = &["create", "delete", "resize", "rename", "mkdir", "rmdir"];

/// Calls marking an RPC/clock boundary: virtual time moves or a
/// simulated machine round-trip is charged, so a crash can land between
/// the mutations on either side.
fn is_boundary(call: &Chain) -> bool {
    let last = call.segs.last().map(String::as_str).unwrap_or("");
    matches!(
        last,
        "advance"
            | "tick"
            | "charge_mgmt"
            | "charge_read"
            | "charge_storage_write"
            | "route_request"
            | "apply_due_faults"
    ) || call.has_pair("clock", "now")
        || call.has_pair("clock", "advance")
}

fn is_cluster_mutation(call: &Chain) -> bool {
    let last = call.segs.last().map(String::as_str).unwrap_or("");
    (CLUSTER_MUTS.contains(&last) && call.segs.iter().any(|s| s == "cluster"))
        || (NS_MUTS.contains(&last) && call.segs.iter().any(|s| s == "ns"))
}

fn crash_decomposition(cm: &CrateModel, out: &mut Vec<SemFinding>) {
    let crash_targets: BTreeSet<&str> = ["crash_point"].into_iter().collect();
    for fm in &cm.files {
        if fm.path != "crates/simdfs/src/sim.rs" {
            continue;
        }
        for f in &fm.fns {
            if f.impl_type.as_deref() != Some("DfsSim") || f.in_test {
                continue;
            }
            let Some((open, close)) = f.body else {
                continue;
            };
            let facts = BodyFacts::extract(fm, open, close);
            let muts = facts
                .calls
                .iter()
                .filter(|c| is_cluster_mutation(c))
                .count();
            if muts < 2 || !facts.calls.iter().any(is_boundary) {
                continue;
            }
            if cm.reaches(Some("DfsSim"), &f.name, &crash_targets, 3) {
                continue;
            }
            out.push(SemFinding {
                rule: "crash-decomposition",
                severity: Severity::Deny,
                file: fm.path.clone(),
                line: f.line as usize,
                message: format!(
                    "`DfsSim::{}` performs {muts} cluster/namespace mutations across an \
                     RPC/clock boundary with no registered crash points: a crash between \
                     them is unexplorable — decompose into crash_point micro-steps or \
                     pragma-document the atomic-window assumption (ROADMAP item 5)",
                    f.name
                ),
            });
        }
    }
}

/// Files under the steal-protocol contract: the grid executor and the
/// deque shim whose two-phase discipline it relies on.
fn in_steal_scope(path: &str) -> bool {
    path.starts_with("crates/bench/") || path.starts_with("crates/compat/crossbeam/")
}

fn steal_protocol(cm: &CrateModel, out: &mut Vec<SemFinding>) {
    for fm in &cm.files {
        if !in_steal_scope(&fm.path) {
            continue;
        }
        let in_shim = fm.path.starts_with("crates/compat/crossbeam/");
        for f in &fm.fns {
            let Some((open, close)) = f.body else {
                continue;
            };
            let facts = BodyFacts::extract(fm, open, close);
            // (a) Single-task steal outside the shim that defines it:
            // thieves must take half a deque so the FIFO schedule stays
            // reproducible and A↔B thief pairs cannot ping-pong.
            if !in_shim {
                for c in facts
                    .calls
                    .iter()
                    .filter(|c| c.segs.len() > 1 && c.segs.last().is_some_and(|s| s == "steal"))
                {
                    out.push(SemFinding {
                        rule: "steal-protocol",
                        severity: Severity::Deny,
                        file: fm.path.clone(),
                        line: c.line as usize,
                        message: format!(
                            "`{}` performs a single-task steal(): use \
                             steal_batch_and_pop so thieves take half the victim's \
                             deque (reproducible FIFO schedules, no ping-pong)",
                            f.name
                        ),
                    });
                }
            }
            // (b) A steal_batch_and_pop caller that never mentions
            // Steal::Retry silently drops the lost-race arm; against the
            // real crossbeam that loses tasks. Production call sites
            // only: tests pin exact single-threaded shim results, where
            // Retry cannot occur.
            let steals: Vec<&Chain> = if f.in_test {
                Vec::new()
            } else {
                facts
                    .calls
                    .iter()
                    .filter(|c| {
                        c.segs.len() > 1
                            && c.segs.last().is_some_and(|s| s == "steal_batch_and_pop")
                    })
                    .collect()
            };
            if !steals.is_empty() && !facts.idents.contains("Retry") {
                out.push(SemFinding {
                    rule: "steal-protocol",
                    severity: Severity::Deny,
                    file: fm.path.clone(),
                    line: steals[0].line as usize,
                    message: format!(
                        "`{}` calls steal_batch_and_pop but never handles \
                         Steal::Retry: a lost race must be retried, not treated as \
                         empty (the mutex shim never yields Retry; the real \
                         crossbeam deque does)",
                        f.name
                    ),
                });
            }
            // (c) Two overlapping lock guards: the two-phase discipline
            // requires releasing the victim's deque lock before taking
            // the destination's.
            for pair in facts.locks.windows(2) {
                let (a, b) = (&pair[0], &pair[1]);
                if b.tok < a.scope_end {
                    let dropped = fm.toks[a.tok..b.tok].iter().any(|t| t.is("drop"));
                    if !dropped {
                        out.push(SemFinding {
                            rule: "steal-protocol",
                            severity: Severity::Deny,
                            file: fm.path.clone(),
                            line: b.line as usize,
                            message: format!(
                                "`{}` takes a second deque lock while the guard from \
                                 line {} is still live: two-phase stealing requires \
                                 releasing the victim's lock before locking the \
                                 destination (concurrent A\u{2194}B steals deadlock \
                                 otherwise)",
                                f.name, a.line
                            ),
                        });
                    }
                }
            }
        }
    }
    let _ = cm;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::strip;
    use crate::syntax::parse_file;

    fn crate_of(files: &[(&str, &str)]) -> CrateModel {
        CrateModel {
            root: "fixture".to_string(),
            files: files
                .iter()
                .map(|(p, s)| parse_file(p, &strip(s).masked))
                .collect(),
        }
    }

    fn findings(files: &[(&str, &str)]) -> Vec<SemFinding> {
        let cm = crate_of(files);
        let mut out = Vec::new();
        run_packs(&cm, &mut out);
        out
    }

    #[test]
    fn journal_coverage_flags_outside_writes_and_allows_owner() {
        let bad = findings(&[(
            "crates/simdfs/src/sim.rs",
            "impl DfsSim { fn corrupt(&mut self) {\n\
                self.cluster.storage.get_mut(&id).unwrap().volumes[0].used += 1;\n\
             } }",
        )]);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert_eq!(bad[0].rule, "journal-coverage");
        assert_eq!(bad[0].line, 2);

        let ok = findings(&[(
            "crates/simdfs/src/cluster.rs",
            "impl Cluster { fn refresh_node_stats(&mut self, id: NodeId) {\n\
                self.storage.get_mut(&id).unwrap().hot = 1;\n\
                self.util_stats.update(id, q);\n\
             } }",
        )]);
        assert!(
            ok.iter().all(|f| f.rule != "journal-coverage"),
            "owner impl writes are covered: {ok:?}"
        );
    }

    #[test]
    fn journal_coverage_flags_test_fns_even_in_owner_file() {
        let out = findings(&[(
            "crates/simdfs/src/cluster.rs",
            "#[cfg(test)] mod tests { fn corrupt(c: &mut Cluster) {\n\
                c.storage.get_mut(&o).unwrap().volumes[0].used += 1;\n\
             } }",
        )]);
        assert_eq!(
            out.iter().filter(|f| f.rule == "journal-coverage").count(),
            1
        );
    }

    #[test]
    fn journal_coverage_cross_checks_field_names() {
        let out = findings(&[(
            "crates/simdfs/src/cluster.rs",
            "pub struct Cluster { storage: NodeArena, mgmt: B, files: B, \
             volume_owner: V, util_stats: U, views_cache: Vec<V>, renamed: Vec<u32> }",
        )]);
        // `view_index` is configured but missing from the struct.
        assert!(
            out.iter()
                .any(|f| f.rule == "journal-coverage" && f.message.contains("view_index")),
            "{out:?}"
        );
    }

    #[test]
    fn journal_coverage_ignores_other_structs_and_locals() {
        let out = findings(&[
            // A themis-side struct with its own `files` field.
            (
                "crates/themis/src/model.rs",
                "impl ModelState { fn apply(&mut self) { self.files.push(p.clone()); } }",
            ),
            // Local accumulators that happen to shadow field names.
            (
                "crates/adaptors/src/sim_adaptor.rs",
                "fn inventory() { let mut mgmt = Vec::new(); mgmt.push(1u64); \
                 let mut storage = Vec::new(); storage.push(2u64); }",
            ),
        ]);
        assert!(out.iter().all(|f| f.rule != "journal-coverage"), "{out:?}");
    }

    #[test]
    fn tracker_completeness_ignores_locals_and_accepts_direct_maintenance() {
        let ok = findings(&[(
            "crates/simdfs/src/cluster.rs",
            "impl Cluster {\n\
               fn count(&self) -> usize { let mut online = 0usize; online += 1; online }\n\
               fn drop_node(&mut self, id: NodeId) {\n\
                 let node = self.storage.remove(&id).expect(\"checked\");\n\
                 self.util_stats.update(id, None);\n\
               }\n\
             }",
        )]);
        assert!(
            ok.iter().all(|f| f.rule != "tracker-completeness"),
            "{ok:?}"
        );
    }

    #[test]
    fn steal_protocol_exempts_unit_tests_from_the_retry_discipline() {
        let out = findings(&[(
            "crates/compat/crossbeam/src/lib.rs",
            "#[cfg(test)] mod tests { #[test] fn pins_shim_semantics() {\n\
                assert_eq!(v.stealer().steal_batch_and_pop(&q), Steal::Success(0));\n\
             } }",
        )]);
        assert!(out.iter().all(|f| f.rule != "steal-protocol"), "{out:?}");
    }

    #[test]
    fn tracker_completeness_requires_a_hook_on_the_call_graph() {
        let src_bad = "impl Cluster {\n\
            fn strip(&mut self) { let v = self.volume_mut(x); v.used = 0; }\n\
         }";
        let bad = findings(&[("crates/simdfs/src/cluster.rs", src_bad)]);
        assert_eq!(
            bad.iter()
                .filter(|f| f.rule == "tracker-completeness")
                .count(),
            1,
            "{bad:?}"
        );

        let src_ok = "impl Cluster {\n\
            fn store(&mut self) { let v = self.volume_mut(x); v.used += b; self.up(v); }\n\
            fn up(&mut self, v: V) { self.touch_volume(v); }\n\
            fn touch_volume(&mut self, v: V) {}\n\
         }";
        let ok = findings(&[("crates/simdfs/src/cluster.rs", src_ok)]);
        assert!(
            ok.iter().all(|f| f.rule != "tracker-completeness"),
            "transitive hook satisfies the contract: {ok:?}"
        );
    }

    #[test]
    fn crash_decomposition_flags_unregistered_multi_step_windows() {
        let bad = findings(&[(
            "crates/simdfs/src/sim.rs",
            "impl DfsSim { fn do_create(&mut self) {\n\
                let fid = self.ns.create(path, size);\n\
                self.charge_mgmt(m, req);\n\
                self.cluster.store(fid, frags);\n\
             } }",
        )]);
        assert_eq!(
            bad.iter()
                .filter(|f| f.rule == "crash-decomposition")
                .count(),
            1,
            "{bad:?}"
        );

        // Reaching crash_point (even transitively) registers the window.
        let ok = findings(&[(
            "crates/simdfs/src/sim.rs",
            "impl DfsSim {\n\
               fn mv(&mut self) {\n\
                 self.cluster.migrate_copy(to, b); self.clock.advance(1);\n\
                 self.cluster.migrate_commit_swap(f, t); self.steps();\n\
               }\n\
               fn steps(&mut self) { self.crash_point(m, s); }\n\
               fn crash_point(&mut self, m: M, s: S) {}\n\
             }",
        )]);
        assert!(ok.iter().all(|f| f.rule != "crash-decomposition"), "{ok:?}");

        // One mutation, or no boundary, is not a window.
        let single = findings(&[(
            "crates/simdfs/src/sim.rs",
            "impl DfsSim { fn one(&mut self) {\n\
                self.cluster.free_file(fid); self.clock.advance(1);\n\
             }\n\
             fn pure(&mut self) { self.cluster.store(a, b); self.cluster.free_file(c); }\n\
             }",
        )]);
        assert!(
            single.iter().all(|f| f.rule != "crash-decomposition"),
            "{single:?}"
        );
    }

    #[test]
    fn steal_protocol_flags_all_three_disciplines() {
        let out = findings(&[(
            "crates/bench/src/grid.rs",
            "fn lone(v: &Stealer<T>) { let t = v.steal(); }\n\
             fn noretry(v: &Stealer<T>, q: &Worker<T>) {\n\
                match v.steal_batch_and_pop(q) { Steal::Success(t) => t, Steal::Empty => r }\n\
             }\n\
             fn nested(a: &M, b: &M) {\n\
                let g1 = a.lock().unwrap();\n\
                let g2 = b.lock().unwrap();\n\
             }",
        )]);
        let rules: Vec<&str> = out.iter().map(|f| f.rule).collect();
        assert_eq!(
            rules.iter().filter(|r| **r == "steal-protocol").count(),
            3,
            "{out:?}"
        );
        assert!(out.iter().any(|f| f.message.contains("single-task")));
        assert!(out.iter().any(|f| f.message.contains("Steal::Retry")));
        assert!(out.iter().any(|f| f.message.contains("second deque lock")));
    }

    #[test]
    fn steal_protocol_accepts_the_two_phase_shape() {
        let out = findings(&[(
            "crates/compat/crossbeam/src/lib.rs",
            "impl Stealer { fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {\n\
                let mut batch = {\n\
                    let mut victim = self.inner.lock().expect(\"p\");\n\
                    victim.drain(..take).collect::<VecDeque<T>>()\n\
                };\n\
                let mut own = dest.inner.lock().expect(\"p\");\n\
                Steal::Retry\n\
             } }",
        )]);
        assert!(out.iter().all(|f| f.rule != "steal-protocol"), "{out:?}");
    }
}
