//! Integration gates for `detlint` itself.
//!
//! 1. The live workspace must be lint-clean (zero violations, even under
//!    `--strict` semantics) — this is the same contract `scripts/ci.sh`
//!    enforces, pinned here so `cargo test` alone catches regressions.
//! 2. A fixture tree seeded with one violation per rule must produce
//!    exactly those violations and a failing exit decision, proving every
//!    rule actually fires outside its unit tests.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

/// The workspace root: two levels up from this crate's manifest.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/detlint sits two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn live_workspace_has_zero_violations() {
    let root = workspace_root();
    assert!(
        root.join("Cargo.toml").is_file(),
        "workspace root not found at {}",
        root.display()
    );
    let outcome = detlint::lint_root(&root).expect("scan failed");
    assert!(
        outcome.files_scanned > 50,
        "suspiciously few files scanned ({}) — walker broken?",
        outcome.files_scanned
    );
    assert!(
        outcome.violations.is_empty(),
        "workspace must be detlint-clean; found:\n{}",
        outcome.render_text()
    );
    assert!(!outcome.should_fail(true));
    // Suppressions are part of the contract: each one carries a reason.
    for s in &outcome.suppressions {
        assert!(!s.reason.is_empty(), "suppression without reason: {s:?}");
    }
}

/// Writes `files` under a fresh fixture root and returns its path.
fn write_fixture(name: &str, files: &[(&str, &str)]) -> PathBuf {
    let root =
        std::env::temp_dir().join(format!("detlint-fixture-{}-{}", std::process::id(), name));
    if root.exists() {
        fs::remove_dir_all(&root).unwrap();
    }
    for (rel, contents) in files {
        let path = root.join(rel);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(path, contents).unwrap();
    }
    root
}

#[test]
fn fixture_tree_with_one_seeded_violation_per_rule_fails() {
    let fixture = write_fixture(
        "all-rules",
        &[
            (
                "crates/simdfs/src/sim.rs",
                "use std::collections::HashMap;\n\
                 fn clock() { let t = std::time::Instant::now(); let _ = t; }\n\
                 fn env() { let _ = std::env::var(\"SEED\"); }\n",
            ),
            (
                "crates/themis/src/lvm.rs",
                "fn score(v: &[f64]) -> f64 { v.iter().sum::<f64>() }\n\
                 fn pick(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n",
            ),
            (
                "crates/workload/src/lib.rs",
                "fn rng() { let r = rand::thread_rng(); let _ = r; }\n\
                 fn raw(p: *mut u8) { unsafe { *p = 0 } }\n\
                 // detlint:allow(ambient-rng)\n\
                 fn rng2() { let r = rand::thread_rng(); let _ = r; }\n",
            ),
        ],
    );

    let outcome = detlint::lint_root(&fixture).expect("fixture scan failed");
    let hit: BTreeSet<&str> = outcome.violations.iter().map(|v| v.rule.as_str()).collect();
    let expected: BTreeSet<&str> = [
        "nondet-iteration",
        "wall-clock",
        "env-read",
        "float-accum",
        "float-order",
        "ambient-rng",
        "unsafe-code",
        "pragma-hygiene",
    ]
    .into_iter()
    .collect();
    assert_eq!(
        hit,
        expected,
        "every rule must fire exactly on its seeded violation:\n{}",
        outcome.render_text()
    );
    // The reason-less pragma must not have suppressed anything.
    assert!(outcome.suppressions.is_empty());
    assert!(
        outcome.should_fail(false),
        "deny violations must fail the run"
    );

    fs::remove_dir_all(&fixture).unwrap();
}

#[test]
fn fixture_tree_with_one_seeded_violation_per_semantic_pack_fails() {
    // End-to-end over `lint_root`: each semantic pack must fire on its
    // seeded contract breach, through the same crate-grouping, pragma and
    // JSON machinery the real scan uses.
    let fixture = write_fixture(
        "sem-rules",
        &[
            // journal-coverage: a helper outside the owning impls writes
            // through Cluster's journaled `storage` table.
            (
                "crates/simdfs/src/poke.rs",
                "pub fn corrupt(c: &mut Cluster, id: NodeId) {\n\
                     c.storage.get_mut(&id).unwrap().hot += 1;\n\
                 }\n",
            ),
            // tracker-completeness: a Cluster method moves fill without
            // reaching any UtilTracker hook.
            (
                "crates/simdfs/src/cluster.rs",
                "impl Cluster {\n\
                     pub fn shrink(&mut self, id: NodeId) {\n\
                         let v = self.volume_mut(id);\n\
                         v.used = 0;\n\
                     }\n\
                 }\n",
            ),
            // crash-decomposition: two mutations straddle a charged RPC
            // with no crash_point registration.
            (
                "crates/simdfs/src/sim.rs",
                "impl DfsSim {\n\
                     fn do_wipe(&mut self, p: &str) {\n\
                         let fid = self.ns.delete(p);\n\
                         self.charge_mgmt(m, req);\n\
                         self.cluster.free_file(fid);\n\
                     }\n\
                 }\n",
            ),
            // steal-protocol: a single-task steal outside the shim.
            (
                "crates/bench/src/grid.rs",
                "fn lone(v: &Stealer<u32>) {\n\
                     let _t = v.steal();\n\
                 }\n",
            ),
            // A pragma-documented breach must be suppressed (and counted),
            // proving the escape hatch works for semantic packs too.
            (
                "crates/simdfs/src/audit.rs",
                "pub fn wreck(c: &mut Cluster, id: NodeId) {\n\
                     // detlint:allow(journal-coverage): deliberate corruption probe\n\
                     c.mgmt.get_mut(&id).unwrap().hot += 1;\n\
                 }\n",
            ),
        ],
    );

    let outcome = detlint::lint_root(&fixture).expect("fixture scan failed");
    let hit: Vec<(&str, &str)> = outcome
        .violations
        .iter()
        .map(|v| (v.rule.as_str(), v.file.as_str()))
        .collect();
    let expected = [
        ("steal-protocol", "crates/bench/src/grid.rs"),
        ("tracker-completeness", "crates/simdfs/src/cluster.rs"),
        ("journal-coverage", "crates/simdfs/src/poke.rs"),
        ("crash-decomposition", "crates/simdfs/src/sim.rs"),
    ];
    assert_eq!(
        hit,
        expected,
        "each semantic pack must fire exactly on its seed:\n{}",
        outcome.render_text()
    );
    assert!(outcome.should_fail(false), "semantic packs are deny-level");
    // The reasoned pragma suppressed the audit probe — and is not itself
    // flagged as unused.
    assert_eq!(outcome.suppressions.len(), 1);
    assert_eq!(outcome.suppressions[0].rule, "journal-coverage");
    assert!(outcome
        .violations
        .iter()
        .all(|v| v.rule != "unused-pragma" && v.rule != "pragma-hygiene"));
    // The report schema carries the v2 stamp CI asserts on.
    assert!(outcome
        .to_json()
        .contains(&format!("\"schema_version\": {}", detlint::SCHEMA_VERSION)));

    fs::remove_dir_all(&fixture).unwrap();
}

#[test]
fn fixture_with_stale_pragma_warns_and_fails_only_under_strict() {
    let fixture = write_fixture(
        "stale-pragma",
        &[(
            "crates/simdfs/src/lib.rs",
            "// detlint:allow(wall-clock): once needed, code since rewritten\n\
             pub fn now_free() -> u64 { 42 }\n",
        )],
    );
    let outcome = detlint::lint_root(&fixture).expect("fixture scan failed");
    assert_eq!(outcome.deny_count(), 0);
    assert_eq!(outcome.warn_count(), 1);
    assert_eq!(outcome.violations[0].rule, "unused-pragma");
    assert!(!outcome.should_fail(false));
    assert!(outcome.should_fail(true), "stale pragmas block strict runs");
    fs::remove_dir_all(&fixture).unwrap();
}

#[test]
fn fixture_with_only_warnings_fails_only_under_strict() {
    let fixture = write_fixture(
        "warn-only",
        &[(
            "crates/simdfs/src/balancer.rs",
            "fn mean(v: &[f64]) -> f64 { v.iter().sum::<f64>() / v.len() as f64 }\n",
        )],
    );
    let outcome = detlint::lint_root(&fixture).expect("fixture scan failed");
    assert_eq!(outcome.deny_count(), 0);
    assert_eq!(outcome.warn_count(), 1);
    assert!(!outcome.should_fail(false));
    assert!(outcome.should_fail(true));
    fs::remove_dir_all(&fixture).unwrap();
}

#[test]
fn json_report_for_fixture_is_well_formed() {
    let fixture = write_fixture(
        "json",
        &[(
            "crates/themis/src/gen.rs",
            "use std::collections::HashSet;\n",
        )],
    );
    let outcome = detlint::lint_root(&fixture).expect("fixture scan failed");
    let js = outcome.to_json();
    assert!(js.contains("\"tool\": \"detlint\""));
    assert!(js.contains("\"rule\": \"nondet-iteration\""));
    assert!(js.contains("\"file\": \"crates/themis/src/gen.rs\""));
    assert!(js.contains("\"deny\": 1"));
    // Balanced braces/brackets — cheap structural sanity without a parser.
    assert_eq!(js.matches('{').count(), js.matches('}').count());
    assert_eq!(js.matches('[').count(), js.matches(']').count());
    fs::remove_dir_all(&fixture).unwrap();
}
