//! # workload — fixed client workloads for DFS testing
//!
//! The paper's Fix-one-input baselines come from two tool families:
//! SmallFile (metadata-intensive distributed workload generation) and
//! Filebench (personality-driven file workloads). This crate provides
//! deterministic generators in both styles, producing Themis
//! [`Operation`] scripts that can be replayed against any
//! [`themis::DfsAdaptor`] as the *fixed* request side of a campaign, or
//! used as standalone load generators for the simulator.
//!
//! [`Operation`]: themis::spec::Operation

pub mod filebench;
pub mod heavy;
pub mod replay;
pub mod sizes;
pub mod smallfile;

pub use filebench::{Personality, PersonalityKind};
pub use heavy::{DiurnalCycle, FlashCrowd, ZipfianHotspot};
pub use replay::{replay, replay_for, ReplayStats};
pub use sizes::SizeDistribution;
pub use smallfile::SmallFileConfig;

use themis::spec::Operation;

/// A reusable workload: a deterministic script of operations.
pub trait Workload {
    /// Human-readable name.
    fn name(&self) -> &'static str;

    /// Generates the next block of operations. Successive calls continue
    /// the workload (fresh file names, steady mix).
    fn next_block(&mut self) -> Vec<Operation>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_produce_wellformed_blocks() {
        let mut w: Vec<Box<dyn Workload>> = vec![
            Box::new(SmallFileConfig::default().build()),
            Box::new(Personality::new(PersonalityKind::FileServer, 11)),
            Box::new(Personality::new(PersonalityKind::WebServer, 11)),
            Box::new(Personality::new(PersonalityKind::VarMail, 11)),
            Box::new(ZipfianHotspot::new(11, 500, 32)),
            Box::new(DiurnalCycle::new(11, 2)),
            Box::new(FlashCrowd::new(11, 3, 16, 4)),
        ];
        for wl in &mut w {
            for _ in 0..5 {
                let block = wl.next_block();
                assert!(!block.is_empty(), "{}", wl.name());
                assert!(block.iter().all(|op| op.well_formed()), "{}", wl.name());
                assert!(
                    block.iter().all(|op| op.opt.is_file_op()),
                    "{}: fixed request workloads never touch configuration",
                    wl.name()
                );
            }
        }
    }
}
