//! Replaying a workload against any [`DfsAdaptor`].
//!
//! This is the harness the Fix-one-input baselines correspond to: a fixed
//! workload driven at a target while something else (a fault injector, a
//! configuration fuzzer, nothing at all) varies.

use crate::Workload;
use themis::adaptor::DfsAdaptor;

/// Statistics of one replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Operations sent.
    pub sent: u64,
    /// Operations the target accepted.
    pub accepted: u64,
    /// Operations the target rejected.
    pub rejected: u64,
}

impl ReplayStats {
    /// Acceptance ratio in `[0, 1]` (1.0 for an empty replay).
    pub fn acceptance(&self) -> f64 {
        if self.sent == 0 {
            1.0
        } else {
            self.accepted as f64 / self.sent as f64
        }
    }
}

/// Drives `workload` against `adaptor` for `blocks` blocks.
pub fn replay(
    workload: &mut dyn Workload,
    adaptor: &mut dyn DfsAdaptor,
    blocks: usize,
) -> ReplayStats {
    let mut stats = ReplayStats::default();
    for _ in 0..blocks {
        for op in workload.next_block() {
            stats.sent += 1;
            match adaptor.send(&op) {
                Ok(()) => stats.accepted += 1,
                Err(_) => stats.rejected += 1,
            }
        }
    }
    stats
}

/// Drives `workload` until `budget_ms` of target time has passed.
pub fn replay_for(
    workload: &mut dyn Workload,
    adaptor: &mut dyn DfsAdaptor,
    budget_ms: u64,
) -> ReplayStats {
    let start = adaptor.now_ms();
    let mut stats = ReplayStats::default();
    while adaptor.now_ms().saturating_sub(start) < budget_ms {
        for op in workload.next_block() {
            stats.sent += 1;
            match adaptor.send(&op) {
                Ok(()) => stats.accepted += 1,
                Err(_) => stats.rejected += 1,
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Personality, PersonalityKind, SmallFileConfig};

    #[test]
    fn smallfile_replays_cleanly_against_the_simulator() {
        let mut adaptor = adaptors::SimAdaptor::new(simdfs::Flavor::Hdfs, simdfs::BugSet::None);
        let mut w = SmallFileConfig::default().build();
        let stats = replay(&mut w, &mut adaptor, 20);
        assert!(stats.sent > 100);
        assert!(
            stats.acceptance() > 0.9,
            "a self-consistent workload should mostly succeed: {:?}",
            stats
        );
    }

    #[test]
    fn personalities_generate_real_load() {
        use themis::DfsAdaptor;
        let mut adaptor = adaptors::SimAdaptor::new(simdfs::Flavor::CephFs, simdfs::BugSet::None);
        let before = adaptor.free_space();
        let mut w = Personality::new(PersonalityKind::FileServer, 3);
        let _ = replay(&mut w, &mut adaptor, 30);
        assert!(
            adaptor.free_space() < before,
            "fileserver must consume space"
        );
    }

    #[test]
    fn replay_for_respects_time_budget() {
        use themis::DfsAdaptor;
        let mut adaptor = adaptors::SimAdaptor::new(simdfs::Flavor::LeoFs, simdfs::BugSet::None);
        let mut w = Personality::new(PersonalityKind::VarMail, 3);
        let stats = replay_for(&mut w, &mut adaptor, 300_000);
        assert!(adaptor.now_ms() >= 300_000);
        assert!(stats.sent > 10);
    }

    #[test]
    fn acceptance_of_empty_replay_is_one() {
        assert_eq!(ReplayStats::default().acceptance(), 1.0);
    }
}
