//! Heavy-traffic workload generators for large-topology campaigns.
//!
//! The SmallFile/Filebench-style generators model steady client mixes on
//! the paper's 10-node testbed. Scaling studies (1k/10k storage nodes)
//! need traffic whose *shape* stresses the load model instead: a Zipfian
//! hotspot concentrating accesses on a few files, a diurnal cycle whose
//! intensity swells and ebbs, and flash crowds hammering one directory in
//! bursts. All three are deterministic given their seed and emit only
//! file operations (the fixed request side of a campaign).

use crate::sizes::SizeDistribution;
use crate::Workload;
use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};
use themis::spec::{Operand, Operation, Operator};

/// A uniform draw from `[0, 1)` with 53 mantissa bits.
fn unit(rng: &mut StdRng) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn create(path: String, size: u64) -> Operation {
    Operation::new(
        Operator::Create,
        vec![Operand::FileName(path), Operand::Size(size)],
    )
}

/// Zipf-like file popularity: most operations land on a handful of hot
/// files out of a large population.
///
/// Ranks are drawn by the inverse CDF of a continuous log-uniform power
/// law (`rank = ⌊n^u⌋`, `u ~ U[0,1)`), which matches a Zipf distribution
/// with exponent ≈ 1 without needing per-rank harmonic tables — rank 0
/// absorbs a constant fraction of the traffic no matter how large the
/// population grows, so a 10k-node cluster still sees a genuine hotspot.
pub struct ZipfianHotspot {
    rng: StdRng,
    population: usize,
    ops_per_block: usize,
    sizes: SizeDistribution,
    created: Vec<bool>,
    started: bool,
}

impl ZipfianHotspot {
    /// A hotspot workload over `population` files, `ops_per_block` drawn
    /// operations per block.
    pub fn new(seed: u64, population: usize, ops_per_block: usize) -> Self {
        let population = population.max(1);
        ZipfianHotspot {
            rng: StdRng::seed_from_u64(seed),
            population,
            ops_per_block: ops_per_block.max(1),
            sizes: SizeDistribution::Uniform(256 * 1024, 8 * 1024 * 1024),
            created: vec![false; population],
            started: false,
        }
    }

    fn rank(&mut self) -> usize {
        let n = self.population as f64;
        let u = unit(&mut self.rng);
        ((n.powf(u) - 1.0) as usize).min(self.population - 1)
    }
}

impl Workload for ZipfianHotspot {
    fn name(&self) -> &'static str {
        "zipfian-hotspot"
    }

    fn next_block(&mut self) -> Vec<Operation> {
        let mut ops = Vec::with_capacity(self.ops_per_block + 1);
        if !self.started {
            self.started = true;
            ops.push(Operation::new(
                Operator::Mkdir,
                vec![Operand::FileName("/zipf".into())],
            ));
        }
        for _ in 0..self.ops_per_block {
            let r = self.rank();
            let path = format!("/zipf/f{r}");
            if !self.created[r] {
                self.created[r] = true;
                let size = self.sizes.sample(&mut self.rng);
                ops.push(create(path, size));
                continue;
            }
            match self.rng.random_range(0..10u32) {
                0..=6 => ops.push(Operation::new(
                    Operator::Open,
                    vec![Operand::FileName(path)],
                )),
                7..=8 => {
                    let size = self.sizes.sample(&mut self.rng) / 8;
                    ops.push(Operation::new(
                        Operator::Append,
                        vec![Operand::FileName(path), Operand::Size(size.max(4096))],
                    ));
                }
                _ => {
                    let size = self.sizes.sample(&mut self.rng);
                    ops.push(Operation::new(
                        Operator::Overwrite,
                        vec![Operand::FileName(path), Operand::Size(size)],
                    ));
                }
            }
        }
        ops
    }
}

/// Relative hourly intensity of a day of traffic (quiet night, morning
/// ramp, afternoon peak, evening tail). Integer weights keep the cycle
/// bit-identical across platforms — no trig.
const DIURNAL_PROFILE: [u32; 24] = [
    3, 2, 2, 2, 2, 3, 5, 8, 12, 14, 15, 15, 14, 15, 16, 15, 14, 12, 10, 8, 6, 5, 4, 3,
];

/// A diurnal cycle: each block is one "hour", and the number of operations
/// swells and ebbs along [`DIURNAL_PROFILE`]. The mix is create-heavy with
/// reads over recently created files, like an ingest pipeline with
/// daytime-interactive consumers.
pub struct DiurnalCycle {
    rng: StdRng,
    /// Operations per unit of profile weight.
    scale: usize,
    sizes: SizeDistribution,
    hour: u64,
    counter: u64,
    recent: Vec<String>,
}

impl DiurnalCycle {
    /// A diurnal workload emitting about `scale` operations per profile
    /// weight unit (peak hours run 16×`scale` ops, the dead of night 2×).
    pub fn new(seed: u64, scale: usize) -> Self {
        DiurnalCycle {
            rng: StdRng::seed_from_u64(seed),
            scale: scale.max(1),
            sizes: SizeDistribution::HeavyTailed,
            hour: 0,
            counter: 0,
            recent: Vec::new(),
        }
    }
}

impl Workload for DiurnalCycle {
    fn name(&self) -> &'static str {
        "diurnal-cycle"
    }

    fn next_block(&mut self) -> Vec<Operation> {
        let mut ops = Vec::new();
        if self.hour == 0 {
            ops.push(Operation::new(
                Operator::Mkdir,
                vec![Operand::FileName("/diurnal".into())],
            ));
        }
        let weight = DIURNAL_PROFILE[(self.hour % 24) as usize] as usize;
        self.hour += 1;
        for _ in 0..weight * self.scale {
            // Day traffic reads what the pipeline wrote; a third of the
            // operations create fresh data regardless of the hour.
            if self.recent.is_empty() || self.rng.random_range(0..3u32) == 0 {
                self.counter += 1;
                let path = format!("/diurnal/f{}", self.counter);
                let size = self.sizes.sample(&mut self.rng);
                ops.push(create(path.clone(), size));
                self.recent.push(path);
                if self.recent.len() > 256 {
                    self.recent.remove(0);
                }
            } else {
                let idx = self.rng.random_range(0..self.recent.len());
                ops.push(Operation::new(
                    Operator::Open,
                    vec![Operand::FileName(self.recent[idx].clone())],
                ));
            }
        }
        ops
    }
}

/// A flash crowd: a steady trickle of background traffic, interrupted
/// every `period` blocks by a burst that hammers one freshly chosen
/// directory with creates and re-reads — the "everyone uploads to the
/// same place at once" pattern that defeats placement spreading.
pub struct FlashCrowd {
    rng: StdRng,
    /// Blocks between bursts.
    period: u64,
    /// Operations per burst.
    burst_ops: usize,
    /// Background operations per quiet block.
    trickle_ops: usize,
    sizes: SizeDistribution,
    block: u64,
    counter: u64,
}

impl FlashCrowd {
    /// A flash-crowd workload bursting every `period` blocks with
    /// `burst_ops` operations over `trickle_ops` of background noise.
    pub fn new(seed: u64, period: u64, burst_ops: usize, trickle_ops: usize) -> Self {
        FlashCrowd {
            rng: StdRng::seed_from_u64(seed),
            period: period.max(1),
            burst_ops: burst_ops.max(1),
            trickle_ops: trickle_ops.max(1),
            sizes: SizeDistribution::Uniform(512 * 1024, 16 * 1024 * 1024),
            block: 0,
            counter: 0,
        }
    }
}

impl Workload for FlashCrowd {
    fn name(&self) -> &'static str {
        "flash-crowd"
    }

    fn next_block(&mut self) -> Vec<Operation> {
        let mut ops = Vec::new();
        let bursting = self.block % self.period == self.period - 1;
        let crowd = self.block / self.period;
        self.block += 1;
        if bursting {
            ops.push(Operation::new(
                Operator::Mkdir,
                vec![Operand::FileName(format!("/crowd{crowd}"))],
            ));
            let mut burst_files = Vec::new();
            for _ in 0..self.burst_ops {
                // The crowd mostly uploads; re-reads pile onto what just
                // landed, concentrating IO on the same nodes.
                if burst_files.is_empty() || self.rng.random_range(0..5u32) < 3 {
                    self.counter += 1;
                    let path = format!("/crowd{crowd}/f{}", self.counter);
                    let size = self.sizes.sample(&mut self.rng);
                    ops.push(create(path.clone(), size));
                    burst_files.push(path);
                } else {
                    let idx = self.rng.random_range(0..burst_files.len());
                    ops.push(Operation::new(
                        Operator::Open,
                        vec![Operand::FileName(burst_files[idx].clone())],
                    ));
                }
            }
        } else {
            if self.block == 1 {
                ops.push(Operation::new(
                    Operator::Mkdir,
                    vec![Operand::FileName("/background".into())],
                ));
            }
            for _ in 0..self.trickle_ops {
                self.counter += 1;
                let path = format!("/background/f{}", self.counter);
                let size = self.sizes.sample(&mut self.rng);
                ops.push(create(path, size));
            }
        }
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_concentrates_on_low_ranks() {
        let mut w = ZipfianHotspot::new(7, 10_000, 64);
        let mut head = 0usize;
        let mut total = 0usize;
        for _ in 0..50 {
            for op in w.next_block() {
                if let Some(Operand::FileName(p)) = op.opds.first() {
                    if let Some(r) = p.strip_prefix("/zipf/f") {
                        total += 1;
                        if r.parse::<usize>().unwrap() < 100 {
                            head += 1;
                        }
                    }
                }
            }
        }
        // The top 1% of ranks must absorb roughly half the traffic
        // (log-uniform gives ln(100)/ln(10000) = 50%).
        assert!(
            head * 10 > total * 3,
            "hotspot too cold: {head}/{total} on the top 100 ranks"
        );
    }

    #[test]
    fn diurnal_blocks_follow_the_profile() {
        let mut w = DiurnalCycle::new(3, 2);
        let sizes: Vec<usize> = (0..24).map(|_| w.next_block().len()).collect();
        // Peak hour (14:00, weight 16) carries well over the nightly
        // minimum (weight 2).
        assert!(sizes[14] >= sizes[2] * 4, "{sizes:?}");
        // Next day repeats the same weights (± the day-one mkdir).
        let day2: Vec<usize> = (0..24).map(|_| w.next_block().len()).collect();
        assert_eq!(sizes[14], day2[14]);
    }

    #[test]
    fn flash_crowd_bursts_on_schedule() {
        let mut w = FlashCrowd::new(5, 4, 40, 2);
        let sizes: Vec<usize> = (0..12).map(|_| w.next_block().len()).collect();
        for (i, len) in sizes.iter().enumerate() {
            if i as u64 % 4 == 3 {
                assert!(*len > 20, "block {i} should be a burst, got {len}");
            } else {
                assert!(*len <= 4, "block {i} should be quiet, got {len}");
            }
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let mut a = ZipfianHotspot::new(11, 1000, 32);
        let mut b = ZipfianHotspot::new(11, 1000, 32);
        let mut c = DiurnalCycle::new(11, 3);
        let mut d = DiurnalCycle::new(11, 3);
        let mut e = FlashCrowd::new(11, 3, 16, 4);
        let mut f = FlashCrowd::new(11, 3, 16, 4);
        for _ in 0..8 {
            assert_eq!(a.next_block(), b.next_block());
            assert_eq!(c.next_block(), d.next_block());
            assert_eq!(e.next_block(), f.next_block());
        }
    }
}
