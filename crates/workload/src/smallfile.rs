//! A SmallFile-style metadata-intensive workload.
//!
//! SmallFile stresses a DFS with many tiny files and metadata operations
//! (create / stat / read / rename / delete) across a directory tree. This
//! generator reproduces that mix deterministically.

use crate::sizes::SizeDistribution;
use crate::Workload;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use themis::spec::{Operand, Operation, Operator};

/// Configuration of the SmallFile-style generator.
#[derive(Debug, Clone)]
pub struct SmallFileConfig {
    /// RNG seed (the workload is deterministic given the seed).
    pub seed: u64,
    /// Files created per block.
    pub files_per_block: usize,
    /// Directory fan-out (files are spread over this many directories).
    pub dirs: usize,
    /// File size distribution (SmallFile defaults to uniform small files).
    pub sizes: SizeDistribution,
}

impl Default for SmallFileConfig {
    fn default() -> Self {
        SmallFileConfig {
            seed: 0x5af1,
            files_per_block: 8,
            dirs: 4,
            sizes: SizeDistribution::Uniform(4 * 1024, 1024 * 1024),
        }
    }
}

impl SmallFileConfig {
    /// Builds the generator.
    pub fn build(self) -> SmallFile {
        SmallFile {
            rng: StdRng::seed_from_u64(self.seed),
            cfg: self,
            counter: 0,
            live: Vec::new(),
        }
    }
}

/// The SmallFile-style workload generator.
pub struct SmallFile {
    cfg: SmallFileConfig,
    rng: StdRng,
    counter: u64,
    live: Vec<String>,
}

impl Workload for SmallFile {
    fn name(&self) -> &'static str {
        "smallfile"
    }

    fn next_block(&mut self) -> Vec<Operation> {
        let mut ops = Vec::new();
        // Ensure the directory tree exists on first use.
        if self.counter == 0 {
            for d in 0..self.cfg.dirs {
                ops.push(Operation::new(
                    Operator::Mkdir,
                    vec![Operand::FileName(format!("/smallfile{d}"))],
                ));
            }
        }
        for _ in 0..self.cfg.files_per_block {
            self.counter += 1;
            let dir = self.counter as usize % self.cfg.dirs.max(1);
            let path = format!("/smallfile{dir}/f{}", self.counter);
            let size = self.cfg.sizes.sample(&mut self.rng);
            ops.push(Operation::new(
                Operator::Create,
                vec![Operand::FileName(path.clone()), Operand::Size(size)],
            ));
            self.live.push(path);
        }
        // Metadata churn over live files: stat/read, rename, delete.
        for _ in 0..self.cfg.files_per_block / 2 {
            if self.live.is_empty() {
                break;
            }
            let idx = self.rng.random_range(0..self.live.len());
            match self.rng.random_range(0..3u32) {
                0 => ops.push(Operation::new(
                    Operator::Open,
                    vec![Operand::FileName(self.live[idx].clone())],
                )),
                1 => {
                    let from = self.live[idx].clone();
                    let to = format!("{from}.r{}", self.counter);
                    ops.push(Operation::new(
                        Operator::Rename,
                        vec![Operand::FileName(from), Operand::FileName(to.clone())],
                    ));
                    self.live[idx] = to;
                }
                _ => {
                    let path = self.live.swap_remove(idx);
                    ops.push(Operation::new(
                        Operator::Delete,
                        vec![Operand::FileName(path)],
                    ));
                }
            }
        }
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_are_deterministic() {
        let mut a = SmallFileConfig::default().build();
        let mut b = SmallFileConfig::default().build();
        for _ in 0..5 {
            assert_eq!(a.next_block(), b.next_block());
        }
    }

    #[test]
    fn first_block_creates_the_directory_tree() {
        let mut w = SmallFileConfig::default().build();
        let block = w.next_block();
        let mkdirs = block.iter().filter(|o| o.opt == Operator::Mkdir).count();
        assert_eq!(mkdirs, 4);
        let later = w.next_block();
        assert!(later.iter().all(|o| o.opt != Operator::Mkdir));
    }

    #[test]
    fn renames_track_live_files() {
        let mut w = SmallFileConfig::default().build();
        for _ in 0..20 {
            let block = w.next_block();
            // Deletes/renames only reference files the workload created.
            for op in block {
                if let Operator::Delete | Operator::Open = op.opt {
                    if let Operand::FileName(p) = &op.opds[0] {
                        assert!(p.starts_with("/smallfile"), "{p}");
                    }
                }
            }
        }
    }
}
