//! Deterministic file-size distributions for workload generation.

use rand::rngs::StdRng;
use rand::RngExt;

const MIB: u64 = 1024 * 1024;
const KIB: u64 = 1024;

/// A file-size distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeDistribution {
    /// Every file has the same size.
    Fixed(u64),
    /// Uniform between the bounds (inclusive lower, exclusive upper).
    Uniform(u64, u64),
    /// A discrete heavy-tailed mix: mostly small files, occasional large
    /// ones (approximating the Zipf-like size mixes Filebench personalities
    /// use).
    HeavyTailed,
}

impl SizeDistribution {
    /// Draws one size.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        match self {
            SizeDistribution::Fixed(s) => *s,
            SizeDistribution::Uniform(lo, hi) => {
                if hi <= lo {
                    *lo
                } else {
                    rng.random_range(*lo..*hi)
                }
            }
            SizeDistribution::HeavyTailed => match rng.random_range(0..100u32) {
                0..=59 => rng.random_range(4 * KIB..256 * KIB),
                60..=89 => rng.random_range(256 * KIB..8 * MIB),
                90..=98 => rng.random_range(8 * MIB..64 * MIB),
                _ => rng.random_range(64 * MIB..256 * MIB),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fixed_is_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(SizeDistribution::Fixed(42).sample(&mut rng), 42);
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let s = SizeDistribution::Uniform(10, 20).sample(&mut rng);
            assert!((10..20).contains(&s));
        }
    }

    #[test]
    fn degenerate_uniform_returns_lower() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(SizeDistribution::Uniform(10, 10).sample(&mut rng), 10);
    }

    #[test]
    fn heavy_tail_is_mostly_small_sometimes_large() {
        let mut rng = StdRng::seed_from_u64(3);
        let samples: Vec<u64> = (0..2000)
            .map(|_| SizeDistribution::HeavyTailed.sample(&mut rng))
            .collect();
        let small = samples.iter().filter(|&&s| s < 256 * KIB).count();
        let large = samples.iter().filter(|&&s| s >= 64 * MIB).count();
        assert!(small > 1000, "small fraction {small}");
        assert!(large > 0 && large < 100, "large fraction {large}");
    }
}
