//! Filebench-style workload personalities.
//!
//! Filebench describes workloads as "personalities" — canned mixes of file
//! operations modelled on real services. The three classic ones are
//! reproduced here: `fileserver` (write-heavy, large files), `webserver`
//! (read-heavy over many small files) and `varmail` (create/append/delete
//! churn, fsync-like small writes).

use crate::sizes::SizeDistribution;
use crate::Workload;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use themis::spec::{Operand, Operation, Operator};

/// Which canned personality to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PersonalityKind {
    /// Write-heavy with sizeable files (the `fileserver` personality).
    FileServer,
    /// Read-dominated over a large set of small files (`webserver`).
    WebServer,
    /// Mail-spool churn: create, append, read, delete (`varmail`).
    VarMail,
}

impl PersonalityKind {
    fn prefix(self) -> &'static str {
        match self {
            PersonalityKind::FileServer => "/fsrv",
            PersonalityKind::WebServer => "/web",
            PersonalityKind::VarMail => "/mail",
        }
    }

    fn sizes(self) -> SizeDistribution {
        match self {
            PersonalityKind::FileServer => SizeDistribution::HeavyTailed,
            PersonalityKind::WebServer => SizeDistribution::Uniform(2 * 1024, 128 * 1024),
            PersonalityKind::VarMail => SizeDistribution::Uniform(1024, 64 * 1024),
        }
    }
}

/// A running personality workload.
pub struct Personality {
    kind: PersonalityKind,
    rng: StdRng,
    counter: u64,
    live: Vec<String>,
}

impl Personality {
    /// Creates the personality with a deterministic seed.
    pub fn new(kind: PersonalityKind, seed: u64) -> Self {
        Personality {
            kind,
            rng: StdRng::seed_from_u64(seed),
            counter: 0,
            live: Vec::new(),
        }
    }

    fn fresh(&mut self) -> String {
        self.counter += 1;
        format!("{}/f{}", self.kind.prefix(), self.counter)
    }
}

impl Workload for Personality {
    fn name(&self) -> &'static str {
        match self.kind {
            PersonalityKind::FileServer => "filebench-fileserver",
            PersonalityKind::WebServer => "filebench-webserver",
            PersonalityKind::VarMail => "filebench-varmail",
        }
    }

    fn next_block(&mut self) -> Vec<Operation> {
        let mut ops = Vec::new();
        if self.counter == 0 {
            ops.push(Operation::new(
                Operator::Mkdir,
                vec![Operand::FileName(self.kind.prefix().to_string())],
            ));
        }
        let sizes = self.kind.sizes();
        let (creates, reads, appends, deletes) = match self.kind {
            PersonalityKind::FileServer => (3, 2, 3, 1),
            PersonalityKind::WebServer => (1, 8, 0, 0),
            PersonalityKind::VarMail => (3, 2, 2, 3),
        };
        for _ in 0..creates {
            let path = self.fresh();
            let size = sizes.sample(&mut self.rng);
            ops.push(Operation::new(
                Operator::Create,
                vec![Operand::FileName(path.clone()), Operand::Size(size)],
            ));
            self.live.push(path);
        }
        for _ in 0..reads {
            if let Some(p) = pick(&mut self.rng, &self.live) {
                ops.push(Operation::new(Operator::Open, vec![Operand::FileName(p)]));
            }
        }
        for _ in 0..appends {
            if let Some(p) = pick(&mut self.rng, &self.live) {
                let delta = sizes.sample(&mut self.rng) / 4 + 1;
                ops.push(Operation::new(
                    Operator::Append,
                    vec![Operand::FileName(p), Operand::Size(delta)],
                ));
            }
        }
        for _ in 0..deletes {
            if self.live.is_empty() {
                break;
            }
            let idx = self.rng.random_range(0..self.live.len());
            let path = self.live.swap_remove(idx);
            ops.push(Operation::new(
                Operator::Delete,
                vec![Operand::FileName(path)],
            ));
        }
        ops
    }
}

fn pick(rng: &mut StdRng, live: &[String]) -> Option<String> {
    if live.is_empty() {
        None
    } else {
        Some(live[rng.random_range(0..live.len())].clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn webserver_is_read_dominated() {
        let mut w = Personality::new(PersonalityKind::WebServer, 5);
        let mut reads = 0;
        let mut writes = 0;
        for _ in 0..20 {
            for op in w.next_block() {
                match op.opt {
                    Operator::Open => reads += 1,
                    Operator::Create | Operator::Append => writes += 1,
                    _ => {}
                }
            }
        }
        assert!(
            reads > writes * 2,
            "webserver must be read-heavy ({reads} vs {writes})"
        );
    }

    #[test]
    fn varmail_churns_files() {
        let mut w = Personality::new(PersonalityKind::VarMail, 5);
        let mut creates = 0;
        let mut deletes = 0;
        for _ in 0..30 {
            for op in w.next_block() {
                match op.opt {
                    Operator::Create => creates += 1,
                    Operator::Delete => deletes += 1,
                    _ => {}
                }
            }
        }
        assert!(creates > 0 && deletes > 0);
        assert!(
            deletes as f64 >= creates as f64 * 0.5,
            "varmail deletes aggressively"
        );
    }

    #[test]
    fn personalities_are_deterministic() {
        let mut a = Personality::new(PersonalityKind::FileServer, 9);
        let mut b = Personality::new(PersonalityKind::FileServer, 9);
        for _ in 0..5 {
            assert_eq!(a.next_block(), b.next_block());
        }
    }

    #[test]
    fn fileserver_uses_heavy_tailed_sizes() {
        let mut w = Personality::new(PersonalityKind::FileServer, 13);
        let mut max_size = 0;
        for _ in 0..200 {
            for op in w.next_block() {
                if let (Operator::Create, Some(Operand::Size(s))) = (op.opt, op.opds.get(1)) {
                    max_size = max_size.max(*s);
                }
            }
        }
        assert!(
            max_size > 8 * 1024 * 1024,
            "tail sizes expected, max {max_size}"
        );
    }
}
