//! The input model: Themis's mirror of the DFS state used to instantiate
//! operands (Section 4.2, *Initial OpSeq Generation*).
//!
//! Themis tracks a file tree `Tree_files`, node lists `list_MN` / `list_S`,
//! the volume list, and the remaining free space `free_space`. Operand
//! instantiation draws from these: file names are either existing entries
//! (uniformly) or fresh names added to the tree; node/volume ids come from
//! the matching list; sizes cover boundary scenarios between 0 and
//! `free_space`.

use crate::adaptor::NodeInventory;
use crate::spec::{Operand, OperandKind, Operation, Operator};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::RngExt;

/// Themis's model of the target's identifier spaces.
#[derive(Debug, Clone, Default)]
pub struct InputModel {
    /// Known file paths (`Tree_files` leaves).
    pub files: Vec<String>,
    /// Known directory paths (`Tree_files` inner nodes).
    pub dirs: Vec<String>,
    /// Management node ids (`list_MN`).
    pub mgmt_nodes: Vec<u64>,
    /// Storage node ids (`list_S`).
    pub storage_nodes: Vec<u64>,
    /// Volume ids.
    pub volumes: Vec<u64>,
    /// Remaining free space (bytes).
    pub free_space: u64,
    next_name: u64,
}

impl InputModel {
    /// Creates an empty model (callers normally `sync` right away).
    pub fn new() -> Self {
        InputModel::default()
    }

    /// Replaces the model with the target's actual inventory (called after
    /// connecting and after every reset).
    pub fn sync(&mut self, inv: &NodeInventory) {
        self.files = inv.files.clone();
        self.dirs = inv.dirs.clone();
        self.sync_topology(inv);
    }

    /// Refreshes node/volume lists and free space, keeping the file tree
    /// (which the model tracks incrementally via [`InputModel::apply`]).
    pub fn sync_topology(&mut self, inv: &NodeInventory) {
        self.mgmt_nodes = inv.mgmt.clone();
        self.storage_nodes = inv.storage.clone();
        self.volumes = inv.volumes.clone();
        self.free_space = inv.free_space;
    }

    /// A fresh file name that does not collide with known paths.
    pub fn fresh_name(&mut self, rng: &mut StdRng) -> String {
        self.next_name += 1;
        let n = self.next_name;
        // Place some files under known directories to exercise path depth.
        if !self.dirs.is_empty() && rng.random_bool(0.3) {
            let dir = self.dirs.as_slice().choose(rng).expect("nonempty");
            format!("{dir}/f{n}")
        } else {
            format!("/f{n}")
        }
    }

    /// A fresh directory name, occasionally nested under an existing
    /// directory to grow deeper trees.
    pub fn fresh_dir(&mut self, rng: &mut StdRng) -> String {
        self.next_name += 1;
        let n = self.next_name;
        if !self.dirs.is_empty() && rng.random_bool(0.25) {
            let parent = self.dirs.as_slice().choose(rng).expect("nonempty");
            format!("{parent}/d{n}")
        } else {
            format!("/d{n}")
        }
    }

    /// An existing file path, uniformly at random (per the paper), or a
    /// fresh one when the tree is empty.
    pub fn some_file(&mut self, rng: &mut StdRng) -> String {
        if self.files.is_empty() || rng.random_bool(0.35) {
            self.fresh_name(rng)
        } else {
            self.files.as_slice().choose(rng).expect("nonempty").clone()
        }
    }

    /// An existing directory, or a fresh one.
    pub fn some_dir(&mut self, rng: &mut StdRng) -> String {
        if self.dirs.is_empty() || rng.random_bool(0.35) {
            self.fresh_dir(rng)
        } else {
            self.dirs.as_slice().choose(rng).expect("nonempty").clone()
        }
    }

    /// A management node id (`list_MN`); 0 when none known.
    pub fn some_mgmt(&self, rng: &mut StdRng) -> u64 {
        self.mgmt_nodes.as_slice().choose(rng).copied().unwrap_or(0)
    }

    /// A storage node id (`list_S`); 0 when none known.
    pub fn some_storage(&self, rng: &mut StdRng) -> u64 {
        self.storage_nodes
            .as_slice()
            .choose(rng)
            .copied()
            .unwrap_or(0)
    }

    /// A volume id; 0 when none known.
    pub fn some_volume(&self, rng: &mut StdRng) -> u64 {
        self.volumes.as_slice().choose(rng).copied().unwrap_or(0)
    }

    /// A data size covering boundary scenarios: zero, tiny, powers of two,
    /// and values near the remaining free space (the paper's boundary
    /// strategy for the Size category).
    pub fn some_size(&self, rng: &mut StdRng) -> u64 {
        const MIB: u64 = 1024 * 1024;
        let free = self.free_space.max(MIB);
        match rng.random_range(0..12u32) {
            0 => 0,
            1 => rng.random_range(1..MIB),
            2..=6 => MIB << rng.random_range(0..6u32), // 1..32 MiB
            7..=9 => MIB << rng.random_range(5..8u32), // 32..128 MiB
            10 => (free / rng.random_range(64..512u64).max(1)).min(256 * MIB),
            _ => (free / 2).min(1 << 30), // boundary: capped at 1 GiB
        }
    }

    /// Instantiates the operands for `opt` (the `opd` rules of Figure 7).
    pub fn instantiate(&mut self, opt: Operator, rng: &mut StdRng) -> Operation {
        let mut opds = Vec::with_capacity(opt.operand_shape().len());
        for kind in opt.operand_shape() {
            let opd = match (opt, kind) {
                // mkdir/rmdir operate on directory paths.
                (Operator::Mkdir, OperandKind::FileName) => Operand::FileName(self.fresh_dir(rng)),
                (Operator::Rmdir, OperandKind::FileName) => Operand::FileName(self.some_dir(rng)),
                (Operator::Create, OperandKind::FileName) => {
                    Operand::FileName(self.fresh_name(rng))
                }
                (_, OperandKind::FileName) => Operand::FileName(self.some_file(rng)),
                (Operator::RemoveMn, OperandKind::NodeId) => Operand::NodeId(self.some_mgmt(rng)),
                (_, OperandKind::NodeId) => Operand::NodeId(self.some_storage(rng)),
                (_, OperandKind::VolumeId) => Operand::VolumeId(self.some_volume(rng)),
                (_, OperandKind::Size) => Operand::Size(self.some_size(rng)),
            };
            opds.push(opd);
        }
        // Rename's second operand is a destination: prefer a fresh path.
        if opt == Operator::Rename {
            if let Some(last) = opds.last_mut() {
                *last = Operand::FileName(self.fresh_name(rng));
            }
        }
        Operation::new(opt, opds)
    }

    /// Tracks the effect of a successfully executed operation on the model
    /// (the mirror side of `Tree_files` / `list_*` maintenance).
    pub fn apply(&mut self, op: &Operation) {
        match (op.opt, op.opds.as_slice()) {
            (Operator::Create, [Operand::FileName(p), _]) if !self.files.contains(p) => {
                self.files.push(p.clone());
            }
            (Operator::Delete, [Operand::FileName(p)]) => {
                self.files.retain(|f| f != p);
            }
            (Operator::Mkdir, [Operand::FileName(p)]) if !self.dirs.contains(p) => {
                self.dirs.push(p.clone());
            }
            (Operator::Rmdir, [Operand::FileName(p)]) => {
                self.dirs.retain(|d| d != p);
            }
            (Operator::Rename, [Operand::FileName(from), Operand::FileName(to)]) => {
                if let Some(f) = self.files.iter_mut().find(|f| *f == from) {
                    *f = to.clone();
                } else if let Some(d) = self.dirs.iter_mut().find(|d| *d == from) {
                    *d = to.clone();
                }
            }
            _ => {}
        }
    }

    /// Whether every identifier the operation references is known to the
    /// model (used by mutation's dangling-reference scan).
    pub fn references_valid(&self, op: &Operation) -> bool {
        op.opds
            .iter()
            .zip(op.opt.operand_shape())
            .all(|(opd, kind)| match (opd, kind) {
                (Operand::FileName(p), OperandKind::FileName) => {
                    match op.opt {
                        // Fresh destinations are always fine.
                        Operator::Create | Operator::Mkdir => true,
                        Operator::Rmdir => self.dirs.contains(p),
                        Operator::Rename => {
                            // Source must exist; destination is checked above
                            // by position — treat any known path as valid.
                            self.files.contains(p) || self.dirs.contains(p) || p.starts_with("/f")
                        }
                        _ => self.files.contains(p),
                    }
                }
                (Operand::NodeId(n), OperandKind::NodeId) => match op.opt {
                    Operator::RemoveMn => self.mgmt_nodes.contains(n),
                    _ => self.storage_nodes.contains(n),
                },
                (Operand::VolumeId(v), OperandKind::VolumeId) => self.volumes.contains(v),
                (Operand::Size(_), OperandKind::Size) => true,
                _ => false,
            })
    }

    /// Repairs dangling references by replacing the offending operands with
    /// random entries from `Tree_files`, `list_MN` or `list_S` (the paper's
    /// post-mutation scan). Fresh names are used only when the respective
    /// list is empty (the operation then simply fails at runtime, which is
    /// a legal fuzzing outcome).
    pub fn repair(&mut self, op: &mut Operation, rng: &mut StdRng) {
        if self.references_valid(op) {
            return;
        }
        let opt = op.opt;
        let mut opds = Vec::with_capacity(opt.operand_shape().len());
        for kind in opt.operand_shape() {
            let opd = match (opt, kind) {
                (Operator::Mkdir, OperandKind::FileName) => Operand::FileName(self.fresh_dir(rng)),
                (Operator::Rmdir, OperandKind::FileName) => {
                    Operand::FileName(match self.dirs.as_slice().choose(rng) {
                        Some(d) => d.clone(),
                        None => self.fresh_dir(rng),
                    })
                }
                (Operator::Create, OperandKind::FileName) => {
                    Operand::FileName(self.fresh_name(rng))
                }
                (_, OperandKind::FileName) => {
                    Operand::FileName(match self.files.as_slice().choose(rng) {
                        Some(f) => f.clone(),
                        None => self.fresh_name(rng),
                    })
                }
                (Operator::RemoveMn, OperandKind::NodeId) => Operand::NodeId(self.some_mgmt(rng)),
                (_, OperandKind::NodeId) => Operand::NodeId(self.some_storage(rng)),
                (_, OperandKind::VolumeId) => Operand::VolumeId(self.some_volume(rng)),
                (_, OperandKind::Size) => Operand::Size(self.some_size(rng)),
            };
            opds.push(opd);
        }
        if opt == Operator::Rename {
            if let Some(last) = opds.last_mut() {
                *last = Operand::FileName(self.fresh_name(rng));
            }
        }
        *op = Operation::new(opt, opds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    fn model() -> InputModel {
        let mut m = InputModel::new();
        m.sync(&NodeInventory {
            mgmt: vec![0, 1],
            storage: vec![2, 3, 4],
            volumes: vec![10, 11],
            free_space: 1 << 30,
            files: vec!["/a".into(), "/b".into()],
            dirs: vec!["/d".into()],
        });
        m
    }

    #[test]
    fn sync_mirrors_inventory() {
        let m = model();
        assert_eq!(m.files.len(), 2);
        assert_eq!(m.mgmt_nodes, vec![0, 1]);
        assert_eq!(m.free_space, 1 << 30);
    }

    #[test]
    fn instantiate_produces_well_formed_ops() {
        let mut m = model();
        let mut r = rng();
        for opt in crate::spec::ALL_OPERATORS {
            let op = m.instantiate(opt, &mut r);
            assert!(op.well_formed(), "{opt:?}");
        }
    }

    #[test]
    fn fresh_names_never_collide() {
        let mut m = model();
        let mut r = rng();
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            assert!(seen.insert(m.fresh_name(&mut r)));
        }
    }

    #[test]
    fn node_pick_respects_role() {
        let m = model();
        let mut r = rng();
        for _ in 0..50 {
            assert!(m.mgmt_nodes.contains(&m.some_mgmt(&mut r)));
            assert!(m.storage_nodes.contains(&m.some_storage(&mut r)));
        }
    }

    #[test]
    fn sizes_cover_boundaries() {
        let m = model();
        let mut r = rng();
        let sizes: Vec<u64> = (0..300).map(|_| m.some_size(&mut r)).collect();
        assert!(sizes.contains(&0), "boundary 0 must occur");
        assert!(
            sizes.iter().any(|&s| s > (1 << 28)),
            "large sizes must occur"
        );
        assert!(sizes.iter().all(|&s| s <= 1 << 33));
    }

    #[test]
    fn apply_tracks_create_and_delete() {
        let mut m = model();
        let op = Operation::new(
            Operator::Create,
            vec![Operand::FileName("/new".into()), Operand::Size(1)],
        );
        m.apply(&op);
        assert!(m.files.contains(&"/new".to_string()));
        let del = Operation::new(Operator::Delete, vec![Operand::FileName("/new".into())]);
        m.apply(&del);
        assert!(!m.files.contains(&"/new".to_string()));
    }

    #[test]
    fn apply_tracks_rename() {
        let mut m = model();
        let op = Operation::new(
            Operator::Rename,
            vec![
                Operand::FileName("/a".into()),
                Operand::FileName("/a2".into()),
            ],
        );
        m.apply(&op);
        assert!(!m.files.contains(&"/a".to_string()));
        assert!(m.files.contains(&"/a2".to_string()));
    }

    #[test]
    fn repair_fixes_dangling_references() {
        let mut m = model();
        let mut r = rng();
        let mut op = Operation::new(Operator::Delete, vec![Operand::FileName("/gone".into())]);
        assert!(!m.references_valid(&op));
        m.repair(&mut op, &mut r);
        assert!(
            m.references_valid(&op),
            "repaired op must reference known ids: {op}"
        );
    }

    #[test]
    fn repair_keeps_valid_ops_unchanged() {
        let mut m = model();
        let mut r = rng();
        let mut op = Operation::new(Operator::Delete, vec![Operand::FileName("/a".into())]);
        let before = op.clone();
        m.repair(&mut op, &mut r);
        assert_eq!(op, before);
    }

    #[test]
    fn remove_mn_reference_checked_against_mgmt_list() {
        let m = model();
        let ok = Operation::new(Operator::RemoveMn, vec![Operand::NodeId(1)]);
        let bad = Operation::new(Operator::RemoveMn, vec![Operand::NodeId(99)]);
        assert!(m.references_valid(&ok));
        assert!(!m.references_valid(&bad));
    }
}
