//! The Load Variance Model (Figure 8 of the paper).
//!
//! For every pair of nodes the model sums the absolute differences of
//! computation load (CPU), network load (requests, read IO, write IO) and
//! storage load. Normalized and weighted, this yields the guidance score
//! that load variance-guided fuzzing maximizes. The model also exposes the
//! max-over-mean ratios the imbalance detector thresholds against
//! (Section 2.2's LBS definition).

// detlint:allow-file(float-accum): all sums/folds reduce `Vec<f64>` load
// vectors in index order; the vectors are built from reports whose node
// order the adaptor fixes, so the floating-point reduction is order-pinned.

use crate::adaptor::{LoadReport, Role};
use serde::{Deserialize, Serialize};

/// Weighting factors of the three variance components.
///
/// The paper uses 1/3 each by default and studies storage-heavier weights
/// in Table 8.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VarianceWeights {
    /// Weight of storage-load variance.
    pub storage: f64,
    /// Weight of computation-load variance.
    pub cpu: f64,
    /// Weight of network-load variance.
    pub network: f64,
}

impl Default for VarianceWeights {
    fn default() -> Self {
        VarianceWeights {
            storage: 1.0 / 3.0,
            cpu: 1.0 / 3.0,
            network: 1.0 / 3.0,
        }
    }
}

impl VarianceWeights {
    /// Weights with the storage factor set to `storage` and the remainder
    /// split evenly (the Table 8 sweep). `storage` is clamped into
    /// `[0, 1]` so the weights always sum to 1 (the sweep invariant);
    /// without the clamp, out-of-range inputs would silently skew the
    /// guidance score.
    pub fn storage_weighted(storage: f64) -> Self {
        let storage = storage.clamp(0.0, 1.0);
        let rest = (1.0 - storage) / 2.0;
        VarianceWeights {
            storage,
            cpu: rest,
            network: rest,
        }
    }
}

/// The variance measurement of one load report.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct VarianceScore {
    /// Normalized mean pairwise storage difference over storage nodes.
    pub storage: f64,
    /// Normalized mean pairwise CPU difference over management nodes.
    pub cpu: f64,
    /// Normalized mean pairwise network difference over management nodes.
    pub network: f64,
    /// Max/mean storage ratio (detector input).
    pub storage_ratio: f64,
    /// Max/mean CPU ratio.
    pub cpu_ratio: f64,
    /// Max/mean network ratio.
    pub network_ratio: f64,
    /// Mean storage per node (bytes) — used by detector load gates.
    pub storage_mean: f64,
    /// Mean CPU per management node.
    pub cpu_mean: f64,
    /// Mean network load per management node.
    pub network_mean: f64,
}

impl VarianceScore {
    /// The weighted guidance score.
    pub fn weighted(&self, w: &VarianceWeights) -> f64 {
        w.storage * self.storage + w.cpu * self.cpu + w.network * self.network
    }
}

/// Mean absolute pairwise difference of `values`, normalized by the mean
/// value (scale-free; 0 for perfectly even load).
fn normalized_pairwise(values: &[f64]) -> f64 {
    let n = values.len();
    if n < 2 {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / n as f64;
    if mean <= f64::EPSILON {
        return 0.0;
    }
    let mut sum = 0.0;
    let mut pairs = 0u64;
    for i in 0..n {
        for j in (i + 1)..n {
            sum += (values[i] - values[j]).abs();
            pairs += 1;
        }
    }
    (sum / pairs as f64) / mean
}

/// Max over mean of `values` (≥ 1.0 when any load exists; 1.0 for
/// degenerate inputs).
fn max_over_mean(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 1.0;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    if mean <= f64::EPSILON {
        return 1.0;
    }
    values.iter().cloned().fold(f64::MIN, f64::max) / mean
}

/// Computes the Load Variance Model over a load report, excluding
/// management nodes younger than `warmup_ms` (their rate counters carry no
/// signal yet; including them lets a tester "raise variance" by merely
/// adding nodes).
pub fn score_warmed(report: &LoadReport, warmup_ms: u64) -> VarianceScore {
    let filtered = LoadReport {
        time_ms: report.time_ms,
        nodes: report
            .nodes
            .iter()
            .filter(|n| n.role != Role::Management || n.uptime_ms >= warmup_ms)
            .cloned()
            .collect(),
    };
    score(&filtered)
}

/// Computes the Load Variance Model over a load report.
pub fn score(report: &LoadReport) -> VarianceScore {
    // Storage load is compared as utilization (used/capacity), matching
    // how real balancers and operators read `df` output; nodes may carry
    // different volume counts.
    let storage: Vec<f64> = report
        .by_role(Role::Storage)
        .filter(|n| n.capacity > 0)
        .map(|n| n.storage as f64 / n.capacity as f64)
        .collect();
    let cpu: Vec<f64> = report.by_role(Role::Management).map(|n| n.cpu).collect();
    let net: Vec<f64> = report
        .by_role(Role::Management)
        .map(|n| n.network())
        .collect();
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    VarianceScore {
        storage: normalized_pairwise(&storage),
        cpu: normalized_pairwise(&cpu),
        network: normalized_pairwise(&net),
        storage_ratio: max_over_mean(&storage),
        cpu_ratio: max_over_mean(&cpu),
        network_ratio: max_over_mean(&net),
        storage_mean: mean(&storage),
        cpu_mean: mean(&cpu),
        network_mean: mean(&net),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptor::NodeLoad;

    fn storage_node(id: u64, bytes: u64) -> NodeLoad {
        NodeLoad {
            node: id,
            role: Role::Storage,
            online: true,
            crashed: false,
            cpu: 0.0,
            rps: 0.0,
            read_io: 0.0,
            write_io: 0.0,
            storage: bytes,
            capacity: 1 << 30,
            uptime_ms: 1 << 40,
        }
    }

    fn mgmt_node(id: u64, cpu: f64, rps: f64) -> NodeLoad {
        NodeLoad {
            node: id,
            role: Role::Management,
            online: true,
            crashed: false,
            cpu,
            rps,
            read_io: 0.0,
            write_io: 0.0,
            storage: 0,
            capacity: 0,
            uptime_ms: 1 << 40,
        }
    }

    #[test]
    fn even_load_scores_zero_variance() {
        let report = LoadReport {
            time_ms: 0,
            nodes: vec![
                storage_node(1, 100),
                storage_node(2, 100),
                storage_node(3, 100),
            ],
        };
        let s = score(&report);
        assert_eq!(s.storage, 0.0);
        assert!((s.storage_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skewed_load_scores_positive_variance() {
        let report = LoadReport {
            time_ms: 0,
            nodes: vec![
                storage_node(1, 10),
                storage_node(2, 10),
                storage_node(3, 100),
            ],
        };
        let s = score(&report);
        assert!(s.storage > 0.5);
        // mean = 40, max = 100 -> ratio 2.5.
        assert!((s.storage_ratio - 2.5).abs() < 1e-12);
    }

    #[test]
    fn variance_is_scale_free() {
        let a = LoadReport {
            time_ms: 0,
            nodes: vec![storage_node(1, 10), storage_node(2, 30)],
        };
        let b = LoadReport {
            time_ms: 0,
            nodes: vec![storage_node(1, 1_000), storage_node(2, 3_000)],
        };
        assert!((score(&a).storage - score(&b).storage).abs() < 1e-12);
    }

    #[test]
    fn cpu_and_network_measured_on_mgmt_nodes() {
        let report = LoadReport {
            time_ms: 0,
            nodes: vec![
                mgmt_node(1, 10.0, 100.0),
                mgmt_node(2, 2.0, 20.0),
                storage_node(3, 50),
                storage_node(4, 50),
            ],
        };
        let s = score(&report);
        assert!(s.cpu > 0.0);
        assert!(s.network > 0.0);
        assert_eq!(s.storage, 0.0);
    }

    #[test]
    fn weighted_score_respects_weights() {
        let s = VarianceScore {
            storage: 1.0,
            storage_ratio: 2.0,
            ..Default::default()
        };
        let even = s.weighted(&VarianceWeights::default());
        let heavy = s.weighted(&VarianceWeights::storage_weighted(1.0));
        assert!(heavy > even);
        assert!((heavy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn storage_weighted_sums_to_one() {
        // In-range sweep values plus out-of-range inputs, which must be
        // clamped into [0, 1] rather than producing weights that sum to
        // something other than 1 (regression: `storage_weighted(1.5)` used
        // to return {1.5, 0, 0} and `storage_weighted(-1.0)` {-1, 1, 1}).
        for w in [
            1.0 / 6.0,
            1.0 / 3.0,
            0.5,
            2.0 / 3.0,
            1.0,
            -1.0,
            -0.25,
            1.5,
            42.0,
        ] {
            let v = VarianceWeights::storage_weighted(w);
            assert!(
                (v.storage + v.cpu + v.network - 1.0).abs() < 1e-12,
                "weights for input {w} must sum to 1: {v:?}"
            );
            assert!((0.0..=1.0).contains(&v.storage));
            assert!(v.cpu >= 0.0 && v.network >= 0.0);
        }
    }

    #[test]
    fn offline_nodes_are_ignored() {
        let mut down = storage_node(9, 1_000_000);
        down.online = false;
        let report = LoadReport {
            time_ms: 0,
            nodes: vec![storage_node(1, 100), storage_node(2, 100), down],
        };
        assert_eq!(score(&report).storage, 0.0);
    }

    #[test]
    fn degenerate_single_node_is_balanced() {
        let report = LoadReport {
            time_ms: 0,
            nodes: vec![storage_node(1, 100)],
        };
        let s = score(&report);
        assert_eq!(s.storage, 0.0);
        assert_eq!(s.storage_ratio, 1.0);
    }
}
