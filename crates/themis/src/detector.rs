//! The Imbalance Detector (Section 4.3, Figure 9).
//!
//! Three anomaly detectors assess computation, network and storage load by
//! comparing the maximum node load against the cluster mean times the
//! variance threshold `t`. Candidates then pass a *double check*: Themis
//! invokes the DFS's rebalance API, waits for `rebalance done`, re-executes
//! the test case, and re-checks the load state. Candidates that survive —
//! the system could not return to its Load Balance State — are confirmed
//! imbalance failures. Crashed nodes are detected directly (rebalancing
//! cannot revive them).

use crate::adaptor::DfsAdaptor;
use crate::lvm;
use crate::spec::{Operand, Operation, Operator, TestCase};
use serde::{Deserialize, Serialize};

/// Which anomaly detector raised a candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ImbalanceKind {
    /// Storage load imbalance across storage nodes.
    Storage,
    /// Computation load imbalance across management nodes.
    Cpu,
    /// Network load imbalance across management nodes.
    Network,
    /// One or more nodes crashed and stay down.
    Crash,
}

impl std::fmt::Display for ImbalanceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImbalanceKind::Storage => write!(f, "storage"),
            ImbalanceKind::Cpu => write!(f, "cpu"),
            ImbalanceKind::Network => write!(f, "network"),
            ImbalanceKind::Crash => write!(f, "crash"),
        }
    }
}

/// A candidate imbalance raised by one anomaly detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// The detector that raised it.
    pub kind: ImbalanceKind,
    /// Max-over-mean ratio observed (for Crash: number of crashed nodes).
    pub ratio: f64,
}

/// Detector configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// The variance threshold `t`: a metric is imbalanced when
    /// `max > mean * (1 + t)`. The paper finds `t = 0.25` optimal
    /// (Table 7).
    pub threshold_t: f64,
    /// Poll period while waiting on the `rebalance state` API (ms).
    pub rebalance_poll_ms: u64,
    /// Give up waiting for rebalance completion after this long (ms).
    pub rebalance_timeout_ms: u64,
    /// Settle time after rebalance before re-checking (ms).
    pub settle_ms: u64,
    /// Minimum mean storage utilization (fraction of capacity) before the
    /// storage detector engages — a near-empty cluster is trivially
    /// "imbalanced" by noise.
    pub min_storage_mean: f64,
    /// Minimum mean CPU load before the computation detector engages.
    pub min_cpu_mean: f64,
    /// Minimum mean network load before the network detector engages.
    pub min_network_mean: f64,
    /// Management nodes younger than this are excluded from the CPU and
    /// network detectors: a node that just joined has no load history yet,
    /// and flagging the cluster as "imbalanced" against it would be noise.
    pub warmup_ms: u64,
    /// Probe requests *per management node* issued during the double-check
    /// so the rate-based detectors observe freshly routed traffic rather
    /// than decayed history. Scaling with the node count keeps the
    /// max-of-n order statistic of routing noise well under the detection
    /// threshold.
    pub probe_requests: u32,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            threshold_t: 0.25,
            rebalance_poll_ms: 2_000,
            rebalance_timeout_ms: 600_000,
            settle_ms: 360_000,
            min_storage_mean: 0.04,
            min_cpu_mean: 3.0,
            min_network_mean: 12.0,
            warmup_ms: 480_000,
            probe_requests: 80,
        }
    }
}

/// The imbalance detector.
#[derive(Debug, Clone, Default)]
pub struct Detector {
    /// Configuration.
    pub cfg: DetectorConfig,
}

impl Detector {
    /// Creates a detector with threshold `t` and default timings.
    pub fn with_threshold(t: f64) -> Self {
        Detector {
            cfg: DetectorConfig {
                threshold_t: t,
                ..Default::default()
            },
        }
    }

    /// Runs the three anomaly detectors (plus crash detection) over a load
    /// report, returning all candidates.
    pub fn check(&self, report: &crate::adaptor::LoadReport) -> Vec<Candidate> {
        let mut out = Vec::new();
        let crashed = report.crashed().count();
        if crashed > 0 {
            out.push(Candidate {
                kind: ImbalanceKind::Crash,
                ratio: crashed as f64,
            });
        }
        // Exclude warming-up management nodes from the rate-based
        // detectors (their decayed load counters are meaningless).
        let s = lvm::score_warmed(report, self.cfg.warmup_ms);
        let limit = 1.0 + self.cfg.threshold_t;
        if s.storage_ratio > limit && s.storage_mean >= self.cfg.min_storage_mean {
            out.push(Candidate {
                kind: ImbalanceKind::Storage,
                ratio: s.storage_ratio,
            });
        }
        if s.cpu_ratio > limit && s.cpu_mean >= self.cfg.min_cpu_mean {
            out.push(Candidate {
                kind: ImbalanceKind::Cpu,
                ratio: s.cpu_ratio,
            });
        }
        if s.network_ratio > limit && s.network_mean >= self.cfg.min_network_mean {
            out.push(Candidate {
                kind: ImbalanceKind::Network,
                ratio: s.network_ratio,
            });
        }
        out
    }

    /// The double-check: rebalance, wait for completion, re-execute the
    /// case, drive fresh probe traffic, re-check. Returns the candidates
    /// that *survived* (confirmed failures); transient imbalances that the
    /// rebalance fixed disappear.
    ///
    /// The settle period lets stale rate counters drain; the probe reads
    /// afterwards verify that the system "provides functional services as
    /// usual" (Section 2.2) and give the rate detectors a fresh, evenly
    /// issued load sample — a healthy cluster spreads the probes, while a
    /// funnel/spin failure concentrates them on its victim.
    pub fn double_check(&self, adaptor: &mut dyn DfsAdaptor, case: &TestCase) -> Vec<Candidate> {
        adaptor.rebalance();
        let mut waited = 0;
        while !adaptor.rebalance_done() && waited < self.cfg.rebalance_timeout_ms {
            adaptor.wait(self.cfg.rebalance_poll_ms);
            waited += self.cfg.rebalance_poll_ms;
        }
        adaptor.wait(self.cfg.settle_ms);
        for op in &case.ops {
            // Re-executed operations may legitimately fail (files deleted
            // meanwhile); that does not invalidate the check.
            let _ = adaptor.send(op);
        }
        self.send_probes(adaptor);
        // Give the system every chance to self-balance after the replay.
        // A single round can race with rounds the target's own balancer
        // started against mid-replay state, so rebalance-and-wait is
        // repeated until the state is quiescent.
        for _ in 0..3 {
            adaptor.rebalance();
            let mut waited = 0;
            while !adaptor.rebalance_done() && waited < self.cfg.rebalance_timeout_ms {
                adaptor.wait(self.cfg.rebalance_poll_ms);
                waited += self.cfg.rebalance_poll_ms;
            }
        }
        // Settle and probe again before the final verdict: the replay just
        // concentrated rate load by design, and reading the report straight
        // after the last rebalance would score those decayed-but-stale
        // counters — confirming a transient CPU/network candidate the
        // system had actually recovered from.
        adaptor.wait(self.cfg.settle_ms);
        self.send_probes(adaptor);
        let report = adaptor.load_report();
        self.check(&report)
    }

    /// Issues the probe workload: reads over *distinct* paths so that
    /// hash-routed gateways spread the probes evenly (cycling a handful of
    /// paths would concentrate them and defeat the check). Existing files
    /// are used when the namespace is rich enough; otherwise synthetic
    /// paths are probed — a failed open still exercises request routing.
    fn send_probes(&self, adaptor: &mut dyn DfsAdaptor) {
        let inv = adaptor.inventory();
        let files = inv.files;
        let total = self.cfg.probe_requests * inv.mgmt.len().max(1) as u32;
        // Every probe path is distinct: repeating a path collapses all its
        // probes onto one hash-routed gateway and shrinks the effective
        // sample, making routing noise look like systematic imbalance.
        // Real files are each read at most once; synthetic paths fill the
        // rest (a failed open still exercises request routing).
        let mut real = files.into_iter();
        for i in 0..total {
            let path = if i % 2 == 0 {
                real.next().unwrap_or_else(|| format!("/.themis_probe_{i}"))
            } else {
                format!("/.themis_probe_{i}")
            };
            let op = Operation::new(Operator::Open, vec![Operand::FileName(path)]);
            let _ = adaptor.send(&op);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptor::{LoadReport, NodeLoad, Role};

    /// Storage node holding `mib` MiB (comfortably above the detector's
    /// minimum-load gate when a few hundred MiB are stored).
    fn storage(id: u64, mib: u64) -> NodeLoad {
        NodeLoad {
            node: id,
            role: Role::Storage,
            online: true,
            crashed: false,
            cpu: 0.0,
            rps: 0.0,
            read_io: 0.0,
            write_io: 0.0,
            storage: mib * 1024 * 1024,
            capacity: 1 << 30,
            uptime_ms: 1 << 40,
        }
    }

    fn mgmt(id: u64, cpu: f64, rps: f64) -> NodeLoad {
        NodeLoad {
            node: id,
            role: Role::Management,
            online: true,
            crashed: false,
            cpu,
            rps,
            read_io: 0.0,
            write_io: 0.0,
            storage: 0,
            capacity: 0,
            uptime_ms: 1 << 40,
        }
    }

    #[test]
    fn balanced_report_raises_nothing() {
        let d = Detector::with_threshold(0.25);
        let report = LoadReport {
            time_ms: 0,
            nodes: vec![
                storage(1, 100),
                storage(2, 100),
                mgmt(3, 5.0, 5.0),
                mgmt(4, 5.0, 5.0),
            ],
        };
        assert!(d.check(&report).is_empty());
    }

    #[test]
    fn storage_hotspot_is_detected() {
        let d = Detector::with_threshold(0.25);
        let report = LoadReport {
            time_ms: 0,
            nodes: vec![storage(1, 600), storage(2, 600), storage(3, 2_400)],
        };
        let c = d.check(&report);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].kind, ImbalanceKind::Storage);
        assert!((c[0].ratio - 2.0).abs() < 1e-12);
    }

    #[test]
    fn threshold_gates_detection() {
        let report = LoadReport {
            time_ms: 0,
            nodes: vec![storage(1, 600), storage(2, 840)],
        };
        // ratio = 840/720 ≈ 1.167.
        assert!(Detector::with_threshold(0.10).check(&report).len() == 1);
        assert!(Detector::with_threshold(0.25).check(&report).is_empty());
    }

    #[test]
    fn cpu_and_network_detectors_fire_independently() {
        let d = Detector::with_threshold(0.25);
        let report = LoadReport {
            time_ms: 0,
            nodes: vec![mgmt(1, 100.0, 5.0), mgmt(2, 1.0, 5.0), mgmt(3, 1.0, 5.0)],
        };
        let kinds: Vec<ImbalanceKind> = d.check(&report).iter().map(|c| c.kind).collect();
        assert_eq!(kinds, vec![ImbalanceKind::Cpu]);
    }

    #[test]
    fn crashed_nodes_always_raise_candidates() {
        let d = Detector::with_threshold(0.25);
        let mut dead = storage(9, 0);
        dead.online = false;
        dead.crashed = true;
        let report = LoadReport {
            time_ms: 0,
            nodes: vec![storage(1, 600), storage(2, 600), dead],
        };
        let c = d.check(&report);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].kind, ImbalanceKind::Crash);
        assert_eq!(c[0].ratio, 1.0);
    }

    #[test]
    fn kind_display() {
        assert_eq!(ImbalanceKind::Storage.to_string(), "storage");
        assert_eq!(ImbalanceKind::Crash.to_string(), "crash");
    }

    #[test]
    fn default_threshold_matches_paper_optimum() {
        assert!((DetectorConfig::default().threshold_t - 0.25).abs() < 1e-12);
    }

    /// Scripted target for the settle-before-final-check regression: the
    /// replayed case concentrates CPU on gateway 1 (a transient rate
    /// skew), probe opens spread evenly over both gateways, waiting
    /// decays the rate counters like the real monitor's decaying windows,
    /// and rebalance is an instant no-op.
    struct TransientRateTarget {
        now: u64,
        /// Extra CPU on gateway 1 from replayed (non-Open) case ops.
        hot: f64,
        /// CPU both gateways accrue from probe opens.
        even: f64,
    }

    impl crate::adaptor::DfsAdaptor for TransientRateTarget {
        fn name(&self) -> String {
            "scripted-transient-rate".into()
        }
        fn send(&mut self, op: &Operation) -> Result<(), crate::adaptor::AdaptorError> {
            match op.opt {
                Operator::Open => self.even += 1.0,
                _ => self.hot += 10.0,
            }
            Ok(())
        }
        fn load_report(&mut self) -> crate::adaptor::LoadReport {
            LoadReport {
                time_ms: self.now,
                nodes: vec![mgmt(1, self.even + self.hot, 0.0), mgmt(2, self.even, 0.0)],
            }
        }
        fn rebalance(&mut self) {}
        fn rebalance_done(&mut self) -> bool {
            true
        }
        fn wait(&mut self, ms: u64) {
            self.now += ms;
            let decay = (-(ms as f64) / 300_000.0).exp();
            self.hot *= decay;
            self.even *= decay;
        }
        fn reset(&mut self) {}
        fn coverage(&mut self) -> u64 {
            0
        }
        fn now_ms(&mut self) -> u64 {
            self.now
        }
        fn inventory(&mut self) -> crate::adaptor::NodeInventory {
            crate::adaptor::NodeInventory {
                mgmt: vec![1, 2],
                ..Default::default()
            }
        }
    }

    #[test]
    fn double_check_filters_transient_rate_imbalance() {
        // Regression: `double_check` used to read the load report straight
        // after its final rebalance loop, with no settle or fresh probes —
        // the replay's concentrated (but transient) CPU skew then survived
        // as a spurious confirmation.
        let mut d = Detector::with_threshold(0.25);
        d.cfg.probe_requests = 5;
        let mut target = TransientRateTarget {
            now: 0,
            hot: 0.0,
            even: 0.0,
        };
        let case = TestCase::new(vec![
            Operation::new(
                Operator::Create,
                vec![Operand::FileName("/t0".into()), Operand::Size(0)],
            ),
            Operation::new(
                Operator::Create,
                vec![Operand::FileName("/t1".into()), Operand::Size(0)],
            ),
        ]);
        // Sanity: without the settle, the stale replay skew would read
        // hot=20 vs even=10 → ratio 1.5 > 1.25, i.e. a Cpu candidate.
        let survivors = d.double_check(&mut target, &case);
        assert!(
            survivors.is_empty(),
            "transient rate skew must not survive a settled double-check: {survivors:?}"
        );
    }
}
