//! The campaign runner: the full testing loop of Figure 6.
//!
//! One campaign drives a strategy against one DFS adaptor for a virtual
//! time budget (24 hours in the paper): generate a case, execute it, read
//! the load report, compute the Load Variance Model, run the imbalance
//! detector, double-check candidates, feed the strategy, and reset the DFS
//! after every confirmed failure. Along the way it records the coverage
//! growth trace (Figure 12), detector statistics (Table 7's inputs) and
//! confirmed failures with reproduction logs.

use crate::adaptive::{AdaptiveConfig, AdaptiveThreshold};
use crate::adaptor::{DfsAdaptor, LoadReport};
use crate::detector::{Detector, DetectorConfig};
use crate::gen::MAX_SEQ_LEN;
use crate::lvm::{self, VarianceWeights};
use crate::model::InputModel;
use crate::report::{ConfirmedFailure, LoggedOp, ReproLog};
use crate::seedpool::PrefixChain;
use crate::strategies::{ExecFeedback, GenCtx, Strategy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// How the campaign positions the target between fuzzing iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// Paper semantics: state accumulates across iterations and the target
    /// is only reset after a confirmed failure.
    #[default]
    Accumulate,
    /// Clean-slate semantics: every case runs against the initial state,
    /// re-established in full each iteration (a restore-to-base for
    /// snapshot-capable adaptors, a complete redeploy otherwise).
    FullReplay,
    /// Clean-slate semantics via the snapshot-fork engine: restore the
    /// deepest cached ancestor shared with the previous case and replay
    /// only the divergent suffix — O(suffix) per iteration instead of
    /// O(case), bit-identical to [`ExecutionMode::FullReplay`]. Mutated
    /// children mostly share a long prefix with their parent, so the
    /// savings compound. Degrades to exactly `FullReplay` behavior on
    /// adaptors without [`crate::SnapshotCapable`].
    Fork,
}

/// Campaign configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Virtual time budget in ms (paper: 24 h).
    pub budget_ms: u64,
    /// RNG seed; a campaign is a pure function of (seed, strategy, target).
    pub seed: u64,
    /// Detector configuration (threshold `t` etc.).
    pub detector: DetectorConfig,
    /// Load-variance weighting factors.
    pub weights: VarianceWeights,
    /// Maximum sequence length (`max_n = 8`).
    pub max_seq_len: usize,
    /// Coverage-trace sampling period in virtual ms (paper: per minute).
    pub sample_period_ms: u64,
    /// Maximum operations retained in the reproduction log (a ring buffer:
    /// older entries are evicted). Bounds campaign memory on long
    /// failure-free stretches; the default of 4096 comfortably covers the
    /// operation sequences needed to reproduce every catalogued failure
    /// (reproductions in the paper are tens of operations long) while
    /// capping the log at a few hundred KiB.
    pub repro_window: usize,
    /// Optional dynamic threshold adjustment (Section 7): start sensitive
    /// and raise `t` whenever the observer classifies a confirmation as a
    /// false positive. When set, `detector.threshold_t` is only the
    /// fallback for observers that do not classify.
    pub adaptive: Option<AdaptiveConfig>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            budget_ms: 24 * 3_600_000,
            seed: 0x7e15,
            detector: DetectorConfig::default(),
            weights: VarianceWeights::default(),
            max_seq_len: MAX_SEQ_LEN,
            sample_period_ms: 60_000,
            repro_window: 4096,
            adaptive: None,
        }
    }
}

impl CampaignConfig {
    /// A configuration with an hour-denominated budget.
    pub fn hours(h: u64) -> Self {
        CampaignConfig {
            budget_ms: h * 3_600_000,
            ..Default::default()
        }
    }
}

/// One point of the coverage growth trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoveragePoint {
    /// Virtual time (ms).
    pub time_ms: u64,
    /// Branches covered by then.
    pub branches: u64,
}

/// The outcome of one campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Target name (from the adaptor).
    pub target: String,
    /// Strategy name.
    pub strategy: String,
    /// Confirmed imbalance failures, in confirmation order.
    pub confirmed: Vec<ConfirmedFailure>,
    /// Candidates raised by the three anomaly detectors.
    pub candidates_raised: u64,
    /// Candidates the double-check filtered out as transient.
    pub filtered_by_double_check: u64,
    /// Coverage growth trace sampled every `sample_period_ms`.
    pub coverage_trace: Vec<CoveragePoint>,
    /// Final branch coverage.
    pub final_coverage: u64,
    /// Operations sent to the DFS.
    pub ops_sent: u64,
    /// Fuzzing iterations executed.
    pub iterations: u64,
    /// DFS resets performed (one per confirmed failure batch).
    pub resets: u64,
}

impl CampaignResult {
    /// Renders the full campaign report as JSON.
    ///
    /// Hand-rolled (the offline workspace has no `serde_json`) and fully
    /// deterministic: field order is fixed, floats use Rust's shortest
    /// round-trip formatting, and every sequence is emitted in its stored
    /// order. Because a campaign is a pure function of
    /// `(seed, strategy, target)`, two runs with the same inputs must
    /// produce *byte-identical* output from this method — the
    /// `same_seed_campaigns_render_byte_identical_reports` regression test
    /// and the determinism contract in DESIGN.md pin exactly that.
    pub fn to_json(&self) -> String {
        use crate::spec::json::escape_into;
        let mut s = String::with_capacity(4096);
        s.push_str("{\"target\":\"");
        escape_into(&mut s, &self.target);
        s.push_str("\",\"strategy\":\"");
        escape_into(&mut s, &self.strategy);
        s.push('"');
        s.push_str(&format!(
            ",\"candidates_raised\":{},\"filtered_by_double_check\":{},\
             \"final_coverage\":{},\"ops_sent\":{},\"iterations\":{},\
             \"resets\":{}",
            self.candidates_raised,
            self.filtered_by_double_check,
            self.final_coverage,
            self.ops_sent,
            self.iterations,
            self.resets
        ));
        s.push_str(",\"confirmed\":[");
        for (i, f) in self.confirmed.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"kind\":\"{}\",\"ratio\":{},\"time_ms\":{},\"case\":{},\
                 \"repro_log\":[",
                f.kind,
                f.ratio,
                f.time_ms,
                crate::spec::json::to_json(&f.case)
            ));
            for (j, e) in f.repro_log.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "{{\"time_ms\":{},\"ok\":{},\"op\":\"",
                    e.time_ms, e.ok
                ));
                escape_into(&mut s, &e.op.to_string());
                s.push_str("\"}");
            }
            s.push_str("]}");
        }
        s.push_str("],\"coverage_trace\":[");
        for (i, p) in self.coverage_trace.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"time_ms\":{},\"branches\":{}}}",
                p.time_ms, p.branches
            ));
        }
        s.push_str("]}");
        s
    }
}

/// Observer hooks, used by the evaluation harness to attribute detector
/// confirmations to ground-truth bugs at the moment they happen.
pub trait CampaignObserver {
    /// A failure was confirmed (called before the DFS is reset).
    fn on_confirmed(&mut self, _failure: &ConfirmedFailure) {}

    /// An iteration completed at virtual time `now_ms`.
    fn on_iteration(&mut self, _now_ms: u64) {}

    /// Classifies a confirmation for adaptive thresholding: `Some(true)`
    /// for a verified true positive, `Some(false)` for a false positive,
    /// `None` when unknown. Only consulted when
    /// [`CampaignConfig::adaptive`] is set.
    fn classify_confirmation(&mut self, _failure: &ConfirmedFailure) -> Option<bool> {
        None
    }
}

/// An observer that ignores everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl CampaignObserver for NullObserver {}

/// Runs one campaign to completion under the default
/// [`ExecutionMode::Accumulate`] semantics.
pub fn run_campaign(
    strategy: &mut dyn Strategy,
    adaptor: &mut dyn DfsAdaptor,
    cfg: &CampaignConfig,
    observer: &mut dyn CampaignObserver,
) -> CampaignResult {
    run_campaign_with_mode(strategy, adaptor, cfg, observer, ExecutionMode::Accumulate)
}

/// The campaign's target-positioning machinery, chosen once at startup.
enum Engine {
    /// No positioning: state accumulates (paper semantics).
    Accumulate,
    /// Clean-slate on a non-capable adaptor: full redeploy between
    /// iterations. `needs_reset` is false while the target is already at
    /// its initial state (campaign start, just after a confirm reset).
    Fallback { needs_reset: bool },
    /// Clean-slate on a snapshot-capable adaptor. `chain` caches the
    /// previous case's per-prefix marks; `fork` selects O(suffix) resume
    /// (vs. always restoring the base). Restores rewind the target's raw
    /// clock, so virtual time is accounted as `consumed + (raw - t0)`:
    /// `t0` is the raw clock at the current lineage's base and `consumed`
    /// banks each finished iteration's elapsed time before the next
    /// restore rewinds it.
    ///
    /// Marks are adaptive: `miss_streak` counts consecutive iterations
    /// whose shared prefix was empty, and once it passes
    /// [`FORK_MISS_LIMIT`] the engine stops taking per-operation marks
    /// (`mark_ops`) except on every [`FORK_PROBE_PERIOD`]th iteration.
    /// Against a strategy that never revisits a prefix this degrades fork
    /// to full replay plus a sliver of probing, instead of paying a mark
    /// per operation for restores that never come; marks never influence
    /// execution outcomes, so the policy cannot affect results.
    Snap {
        chain: PrefixChain,
        consumed: u64,
        t0: u64,
        fork: bool,
        miss_streak: u32,
        mark_ops: bool,
    },
}

/// Consecutive empty-prefix iterations after which the fork engine stops
/// taking per-operation marks (see [`Engine::Snap`]).
const FORK_MISS_LIMIT: u32 = 8;

/// While marks are suspended, every Nth iteration still marks its case so
/// prefix reuse can be rediscovered if the strategy starts producing it.
const FORK_PROBE_PERIOD: u64 = 16;

/// Virtual-time offset of an engine: `vtime(raw, off(e))` maps a raw
/// target clock reading onto the campaign's monotone virtual axis.
fn off(e: &Engine) -> (u64, u64) {
    match e {
        Engine::Snap { consumed, t0, .. } => (*consumed, *t0),
        _ => (0, 0),
    }
}

fn vtime(raw: u64, (consumed, t0): (u64, u64)) -> u64 {
    consumed + raw.saturating_sub(t0)
}

/// Runs one campaign to completion under an explicit execution mode.
///
/// The clean-slate modes ([`ExecutionMode::FullReplay`] and
/// [`ExecutionMode::Fork`]) are bit-identical to each other on any
/// adaptor: same iterations, operations, detections, confirmed failures
/// and reproduction logs. `Fork` merely skips re-executing work whose
/// outcome is already determined (the shared prefix), exploiting that
/// every operation's outcome is a deterministic function of (base state,
/// op prefix). Their results are reported on a virtual-time axis starting
/// at 0, because snapshot restores rewind the target's raw clock.
pub fn run_campaign_with_mode(
    strategy: &mut dyn Strategy,
    adaptor: &mut dyn DfsAdaptor,
    cfg: &CampaignConfig,
    observer: &mut dyn CampaignObserver,
    mode: ExecutionMode,
) -> CampaignResult {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut model = InputModel::new();
    model.sync(&adaptor.inventory());
    let mut adaptive = cfg.adaptive.map(AdaptiveThreshold::new);
    let mut detector = Detector { cfg: cfg.detector };
    if let Some(a) = &adaptive {
        detector.cfg.threshold_t = a.threshold();
    }

    let mut engine = if mode == ExecutionMode::Accumulate {
        Engine::Accumulate
    } else if let Some(base) = adaptor.snapshots().map(|s| s.snapshot()) {
        Engine::Snap {
            chain: PrefixChain::new(base),
            consumed: 0,
            t0: adaptor.now_ms(),
            fork: mode == ExecutionMode::Fork,
            miss_streak: 0,
            mark_ops: mode == ExecutionMode::Fork,
        }
    } else {
        Engine::Fallback { needs_reset: false }
    };
    // In clean-slate modes the input model permanently describes the
    // initial state (that is what every case runs against); only the
    // accumulate engine tracks execution effects into it.
    let track_model = matches!(engine, Engine::Accumulate);

    let start_v = vtime(adaptor.now_ms(), off(&engine));
    let mut result = CampaignResult {
        target: adaptor.name(),
        strategy: strategy.name().to_string(),
        confirmed: Vec::new(),
        candidates_raised: 0,
        filtered_by_double_check: 0,
        coverage_trace: vec![CoveragePoint {
            time_ms: start_v,
            branches: adaptor.coverage(),
        }],
        final_coverage: 0,
        ops_sent: 0,
        iterations: 0,
        resets: 0,
    };
    let mut repro_log = ReproLog::new(cfg.repro_window);
    // Long-lived buffers reused across iterations (the hot loop itself is
    // allocation-free apart from case generation and confirmations).
    let mut report = LoadReport::default();
    let mut persistent: Vec<crate::detector::Candidate> = Vec::new();
    let mut next_sample = start_v + cfg.sample_period_ms;
    // Imbalance kinds observed on the previous iteration: a candidate must
    // persist across two consecutive iterations before the (expensive)
    // double-check runs — transient imbalance during an in-flight
    // migration is normal and acceptable (Section 2.1).
    let mut prior_kinds: Vec<crate::detector::ImbalanceKind> = Vec::new();
    // Online nodes seen in the previous report — used to detect partial
    // reports (crashed/partitioned/removed nodes) and restart the
    // persistence window instead of comparing incomparable reports.
    let mut prior_report_nodes: Vec<(u64, crate::adaptor::Role)> = Vec::new();
    let mut report_nodes: Vec<(u64, crate::adaptor::Role)> = Vec::new();
    let mut prior_variance = 0.0f64;

    loop {
        // Between iterations the snapshot engine's virtual position is
        // exactly the banked time (the raw clock is about to be rewound);
        // elsewhere raw time is the position.
        let vpos = match &engine {
            Engine::Snap { consumed, .. } => *consumed,
            _ => adaptor.now_ms(),
        };
        if vpos.saturating_sub(start_v) >= cfg.budget_ms {
            break;
        }
        result.iterations += 1;
        let case = {
            let mut ctx = GenCtx {
                model: &mut model,
                rng: &mut rng,
                max_len: cfg.max_seq_len,
            };
            strategy.next_case(&mut ctx)
        };

        // Position the target for this case and replay any cached prefix
        // outcomes into the log.
        let exec_from = match &mut engine {
            Engine::Accumulate => 0,
            Engine::Fallback { needs_reset } => {
                if *needs_reset {
                    adaptor.reset();
                }
                0
            }
            Engine::Snap {
                chain,
                consumed,
                t0,
                fork,
                miss_streak,
                mark_ops,
            } => {
                let k = if *fork { chain.lcp(&case.ops) } else { 0 };
                if *fork {
                    *miss_streak = if k > 0 {
                        0
                    } else {
                        miss_streak.saturating_add(1)
                    };
                    *mark_ops = *miss_streak < FORK_MISS_LIMIT
                        || result.iterations.is_multiple_of(FORK_PROBE_PERIOD);
                }
                if adaptor.snapshots().expect("capable").restore(chain.mark(k)) {
                    chain.truncate(k);
                    for (i, op) in case.ops[..k].iter().enumerate() {
                        let (ok, raw_t) = chain.outcome(i);
                        repro_log.push(LoggedOp {
                            time_ms: *consumed + raw_t.saturating_sub(*t0),
                            op: op.clone(),
                            ok,
                        });
                        result.ops_sent += 1;
                    }
                    k
                } else {
                    // Defensive: the lineage was lost (cannot happen while
                    // the engine owns all resets). Rebuild from a redeploy.
                    adaptor.reset();
                    let raw = adaptor.now_ms();
                    *consumed += raw.saturating_sub(*t0);
                    *t0 = raw;
                    chain.rebase(adaptor.snapshots().expect("capable").snapshot());
                    0
                }
            }
        };

        // Execute the (rest of the) case; failed operations are normal
        // fuzzing outcomes.
        for op in &case.ops[exec_from..] {
            let ok = adaptor.send(op).is_ok();
            if track_model && ok {
                model.apply(op);
            }
            let raw_t = adaptor.now_ms();
            repro_log.push(LoggedOp {
                time_ms: vtime(raw_t, off(&engine)),
                op: op.clone(),
                ok,
            });
            result.ops_sent += 1;
            if let Engine::Snap {
                chain,
                mark_ops: true,
                ..
            } = &mut engine
            {
                let mark = adaptor.snapshots().expect("capable").snapshot();
                chain.push(op.clone(), ok, raw_t, mark);
            }
        }
        if track_model {
            model.sync_topology(&adaptor.topology());
        }
        if let Engine::Fallback { needs_reset } = &mut engine {
            *needs_reset = true;
        }

        // Monitor, model, detect (Figure 6 steps 6-8). The report buffer
        // is reused across iterations.
        adaptor.load_report_into(&mut report);
        // Partial-report tolerance: when a node that reported last
        // iteration is missing now (crashed, partitioned away from the
        // monitor, or removed), comparisons against the previous iteration
        // are meaningless for the metrics that node contributed to —
        // restart the persistence window for those kinds rather than
        // letting a visibility flap masquerade as a persistent imbalance.
        // The invalidation is role-aware (a vanished management node
        // invalidates the CPU/network window, a vanished storage node the
        // storage window) and newly added nodes do NOT invalidate
        // anything: the LVM already excludes them until they pass warmup.
        // Crash candidates bypass persistence, so crash detection is
        // unaffected.
        report_nodes.clear();
        report_nodes.extend(
            report
                .nodes
                .iter()
                .filter(|n| n.online)
                .map(|n| (n.node, n.role)),
        );
        for role in [
            crate::adaptor::Role::Management,
            crate::adaptor::Role::Storage,
        ] {
            let vanished = prior_report_nodes
                .iter()
                .any(|e| e.1 == role && !report_nodes.contains(e));
            if vanished {
                prior_kinds.retain(|k| match role {
                    crate::adaptor::Role::Management => !matches!(
                        k,
                        crate::detector::ImbalanceKind::Cpu
                            | crate::detector::ImbalanceKind::Network
                    ),
                    crate::adaptor::Role::Storage => *k != crate::detector::ImbalanceKind::Storage,
                });
            }
        }
        std::mem::swap(&mut report_nodes, &mut prior_report_nodes);
        let vscore = lvm::score_warmed(&report, cfg.detector.warmup_ms);
        let candidates = detector.check(&report);

        // Persistence pre-filter: only kinds seen on consecutive
        // iterations become real candidates (crashes are immediate), and
        // the expensive double-check is deferred while the target is still
        // actively rebalancing — transient imbalance during an in-flight
        // migration is normal and acceptable (Section 2.1).
        let quiescent = adaptor.rebalance_done();
        persistent.clear();
        persistent.extend(
            candidates
                .iter()
                .filter(|c| {
                    c.kind == crate::detector::ImbalanceKind::Crash
                        || (quiescent && prior_kinds.contains(&c.kind))
                })
                .cloned(),
        );
        prior_kinds.clear();
        prior_kinds.extend(candidates.iter().map(|c| c.kind));
        let candidates = &persistent;

        let mut confirmed_now = false;
        if !candidates.is_empty() {
            result.candidates_raised += candidates.len() as u64;
            let survivors = detector.double_check(adaptor, &case);
            // The double-check rebalanced and settled the system; start the
            // persistence window fresh.
            prior_kinds.clear();
            let confirmed: Vec<_> = survivors
                .iter()
                .filter(|s| candidates.iter().any(|c| c.kind == s.kind))
                .collect();
            result.filtered_by_double_check +=
                candidates.len().saturating_sub(confirmed.len()) as u64;
            // One snapshot per confirmation batch: every failure confirmed
            // on this iteration shares the same log.
            let snapshot = if confirmed.is_empty() {
                None
            } else {
                Some(repro_log.snapshot())
            };
            for c in confirmed {
                let failure = ConfirmedFailure {
                    kind: c.kind,
                    ratio: c.ratio,
                    time_ms: vtime(adaptor.now_ms(), off(&engine)),
                    case: case.clone(),
                    repro_log: std::sync::Arc::clone(snapshot.as_ref().expect("non-empty")),
                };
                observer.on_confirmed(&failure);
                if let Some(a) = adaptive.as_mut() {
                    match observer.classify_confirmation(&failure) {
                        Some(false) => {
                            a.report_false_positive();
                            detector.cfg.threshold_t = a.threshold();
                        }
                        Some(true) => a.report_true_positive(),
                        None => {}
                    }
                }
                result.confirmed.push(failure);
                confirmed_now = true;
            }
        }

        // Feed the strategy (Figure 6 step 9).
        let weighted = vscore.weighted(&cfg.weights);
        let fb = ExecFeedback {
            variance: weighted,
            variance_delta: weighted - prior_variance,
            coverage: adaptor.coverage(),
            found_failure: confirmed_now,
        };
        prior_variance = weighted;
        strategy.feedback(&case, &fb);

        // On a confirmed failure the DFS has entered a failure state:
        // reset it to initial state and restart testing.
        if confirmed_now {
            adaptor.reset();
            model.sync(&adaptor.inventory());
            repro_log.clear();
            strategy.on_reset();
            result.resets += 1;
            prior_variance = 0.0;
            prior_kinds.clear();
            match &mut engine {
                Engine::Accumulate => {}
                // The target is already at its initial state; skip the
                // next iteration's redeploy.
                Engine::Fallback { needs_reset } => *needs_reset = false,
                Engine::Snap {
                    chain,
                    consumed,
                    t0,
                    ..
                } => {
                    // The reset killed every mark: bank the elapsed time
                    // up to and including the reset, then re-root the
                    // lineage on the fresh initial state.
                    let raw = adaptor.now_ms();
                    *consumed += raw.saturating_sub(*t0);
                    *t0 = raw;
                    chain.rebase(adaptor.snapshots().expect("capable").snapshot());
                }
            }
        }

        // Sample the coverage trace on the virtual-minute grid, then bank
        // this iteration's elapsed time before the next restore rewinds
        // the raw clock.
        let vnow = vtime(adaptor.now_ms(), off(&engine));
        while next_sample <= vnow {
            result.coverage_trace.push(CoveragePoint {
                time_ms: next_sample,
                branches: adaptor.coverage(),
            });
            next_sample += cfg.sample_period_ms;
        }
        observer.on_iteration(vnow);
        if let Engine::Snap { consumed, .. } = &mut engine {
            *consumed = vnow;
        }
    }

    result.final_coverage = adaptor.coverage();
    let vend = match &engine {
        Engine::Snap { consumed, .. } => *consumed,
        _ => adaptor.now_ms(),
    };
    result.coverage_trace.push(CoveragePoint {
        time_ms: vend,
        branches: result.final_coverage,
    });
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptor::{AdaptorError, LoadReport, NodeInventory, NodeLoad, Role};
    use crate::spec::Operation;
    use crate::strategies::ThemisMinus;

    /// A minimal scripted adaptor: balanced until `imbalance_after` ops,
    /// persistently imbalanced afterwards.
    struct FakeAdaptor {
        now: u64,
        ops: u64,
        coverage: u64,
        imbalance_after: u64,
        resets: u64,
    }

    impl FakeAdaptor {
        fn new(imbalance_after: u64) -> Self {
            FakeAdaptor {
                now: 0,
                ops: 0,
                coverage: 0,
                imbalance_after,
                resets: 0,
            }
        }

        fn imbalanced(&self) -> bool {
            self.ops >= self.imbalance_after
        }
    }

    impl DfsAdaptor for FakeAdaptor {
        fn name(&self) -> String {
            "fake".into()
        }

        fn send(&mut self, _op: &Operation) -> Result<(), AdaptorError> {
            self.ops += 1;
            self.now += 1_000;
            self.coverage += 3;
            Ok(())
        }

        fn load_report(&mut self) -> LoadReport {
            let hot = if self.imbalanced() { 4_000 } else { 1_000 };
            let mk = |id: u64, mib: u64| NodeLoad {
                node: id,
                role: Role::Storage,
                online: true,
                crashed: false,
                cpu: 0.0,
                rps: 0.0,
                read_io: 0.0,
                write_io: 0.0,
                storage: mib * 1024 * 1024,
                capacity: 8 << 30,
                uptime_ms: 1 << 40,
            };
            LoadReport {
                time_ms: self.now,
                nodes: vec![mk(1, 1_000), mk(2, 1_000), mk(3, hot)],
            }
        }

        fn rebalance(&mut self) {
            self.now += 5_000;
        }

        fn rebalance_done(&mut self) -> bool {
            true
        }

        fn wait(&mut self, ms: u64) {
            self.now += ms;
        }

        fn reset(&mut self) {
            self.resets += 1;
            self.ops = 0;
            self.now += 60_000;
        }

        fn coverage(&mut self) -> u64 {
            self.coverage
        }

        fn now_ms(&mut self) -> u64 {
            self.now
        }

        fn inventory(&mut self) -> NodeInventory {
            NodeInventory {
                mgmt: vec![0],
                storage: vec![1, 2, 3],
                volumes: vec![10, 11, 12],
                free_space: 1 << 40,
                files: vec![],
                dirs: vec![],
            }
        }
    }

    #[test]
    fn campaign_respects_budget() {
        let mut strat = ThemisMinus;
        let mut adaptor = FakeAdaptor::new(u64::MAX);
        let cfg = CampaignConfig {
            budget_ms: 600_000,
            ..Default::default()
        };
        let res = run_campaign(&mut strat, &mut adaptor, &cfg, &mut NullObserver);
        assert!(adaptor.now >= 600_000);
        assert!(res.iterations > 10);
        assert!(res.ops_sent >= res.iterations);
        assert!(
            res.confirmed.is_empty(),
            "balanced fake must confirm nothing"
        );
        assert_eq!(res.candidates_raised, 0);
    }

    #[test]
    fn campaign_confirms_persistent_imbalance_and_resets() {
        let mut strat = ThemisMinus;
        let mut adaptor = FakeAdaptor::new(20);
        let cfg = CampaignConfig {
            budget_ms: 400_000,
            ..Default::default()
        };
        let res = run_campaign(&mut strat, &mut adaptor, &cfg, &mut NullObserver);
        assert!(
            !res.confirmed.is_empty(),
            "persistent imbalance must be confirmed"
        );
        assert!(res.resets >= 1);
        assert_eq!(adaptor.resets, res.resets);
        let f = &res.confirmed[0];
        assert_eq!(f.kind, crate::detector::ImbalanceKind::Storage);
        assert!(!f.repro_log.is_empty());
        assert!(f.ratio > 1.25);
    }

    #[test]
    fn coverage_trace_is_monotonic_in_time_and_branches() {
        let mut strat = ThemisMinus;
        let mut adaptor = FakeAdaptor::new(u64::MAX);
        let cfg = CampaignConfig {
            budget_ms: 300_000,
            ..Default::default()
        };
        let res = run_campaign(&mut strat, &mut adaptor, &cfg, &mut NullObserver);
        assert!(res.coverage_trace.len() >= 5);
        for w in res.coverage_trace.windows(2) {
            assert!(w[1].time_ms >= w[0].time_ms);
            assert!(w[1].branches >= w[0].branches);
        }
        assert_eq!(
            res.final_coverage,
            res.coverage_trace.last().unwrap().branches
        );
    }

    #[test]
    fn observer_sees_confirmations() {
        struct Counting(u64);
        impl CampaignObserver for Counting {
            fn on_confirmed(&mut self, _f: &ConfirmedFailure) {
                self.0 += 1;
            }
        }
        let mut strat = ThemisMinus;
        let mut adaptor = FakeAdaptor::new(10);
        let cfg = CampaignConfig {
            budget_ms: 300_000,
            ..Default::default()
        };
        let mut obs = Counting(0);
        let res = run_campaign(&mut strat, &mut adaptor, &cfg, &mut obs);
        assert_eq!(obs.0, res.confirmed.len() as u64);
        assert!(obs.0 >= 1);
    }

    #[test]
    fn clean_slate_modes_are_identical_on_non_capable_adaptors() {
        // FakeAdaptor has no snapshot capability, so both clean-slate
        // modes must take the same full-redeploy fallback path and produce
        // exactly the same result — including logged op times and
        // confirmed failures.
        let cfg = CampaignConfig {
            budget_ms: 400_000,
            ..Default::default()
        };
        let run = |mode: ExecutionMode| {
            let mut strat = ThemisMinus;
            let mut adaptor = FakeAdaptor::new(20);
            run_campaign_with_mode(&mut strat, &mut adaptor, &cfg, &mut NullObserver, mode)
        };
        let full = run(ExecutionMode::FullReplay);
        let fork = run(ExecutionMode::Fork);
        assert_eq!(full, fork);
        assert!(full.iterations > 0);
    }

    #[test]
    fn clean_slate_fallback_redeploys_between_iterations() {
        let mut strat = ThemisMinus;
        let mut adaptor = FakeAdaptor::new(u64::MAX);
        let cfg = CampaignConfig {
            budget_ms: 600_000,
            ..Default::default()
        };
        let res = run_campaign_with_mode(
            &mut strat,
            &mut adaptor,
            &cfg,
            &mut NullObserver,
            ExecutionMode::FullReplay,
        );
        // One redeploy before every iteration except the first.
        assert_eq!(adaptor.resets, res.iterations - 1);
        assert_eq!(res.resets, 0, "no failures, so no confirm resets");
    }

    #[test]
    fn campaigns_are_deterministic() {
        let cfg = CampaignConfig {
            budget_ms: 200_000,
            ..Default::default()
        };
        let run = || {
            let mut strat = ThemisMinus;
            let mut adaptor = FakeAdaptor::new(25);
            run_campaign(&mut strat, &mut adaptor, &cfg, &mut NullObserver)
        };
        let a = run();
        let b = run();
        assert_eq!(a.ops_sent, b.ops_sent);
        assert_eq!(a.confirmed.len(), b.confirmed.len());
        assert_eq!(a.final_coverage, b.final_coverage);
    }
}
