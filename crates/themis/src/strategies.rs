//! Test-case generation strategies: Themis's load variance-guided fuzzing
//! and the four comparison methods of Section 6, plus the `Themis⁻`
//! ablation of Section 6.3.
//!
//! All strategies run under the same campaign loop and the same imbalance
//! detector (the paper grants its detector to every baseline for fairness);
//! they differ only in how the next test case is produced and how runtime
//! feedback is used.

use crate::gen::{self, OpDraw};
use crate::model::InputModel;
use crate::mutate;
use crate::seedpool::SeedPool;
use crate::spec::{Operation, Operator, TestCase};
use rand::rngs::StdRng;
use rand::RngExt;

/// Context handed to a strategy when producing the next case.
pub struct GenCtx<'a> {
    /// The shared input model (Tree_files, node lists, free space).
    pub model: &'a mut InputModel,
    /// The campaign RNG.
    pub rng: &'a mut StdRng,
    /// Maximum sequence length (`max_n`).
    pub max_len: usize,
}

/// Runtime feedback after executing a case.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecFeedback {
    /// Weighted load-variance score of the post-execution load report.
    pub variance: f64,
    /// Change in weighted load variance produced by this case (post minus
    /// pre). Positive deltas mean the case pushed nodes further apart.
    pub variance_delta: f64,
    /// Cumulative branch coverage after execution.
    pub coverage: u64,
    /// Whether this case led to a confirmed imbalance failure.
    pub found_failure: bool,
}

/// A test-case generation strategy.
pub trait Strategy {
    /// Stable strategy name (used in tables).
    fn name(&self) -> &'static str;

    /// Produces the next case to execute.
    fn next_case(&mut self, ctx: &mut GenCtx<'_>) -> TestCase;

    /// Consumes feedback for the case just executed.
    fn feedback(&mut self, case: &TestCase, fb: &ExecFeedback);

    /// Called when the DFS was reset to its initial state.
    fn on_reset(&mut self) {}
}

// ---------------------------------------------------------------------
// Themis: load variance-guided fuzzing over the unified sequence space.
// ---------------------------------------------------------------------

/// The paper's strategy: seeds whose execution increased the load variance
/// (or found a failure) are pooled and mutated.
pub struct ThemisStrategy {
    pool: SeedPool,
    /// Highest variance seen since the last reset.
    frontier: f64,
    last_case_fresh: bool,
}

impl ThemisStrategy {
    /// Creates the strategy with the default pool capacity.
    pub fn new() -> Self {
        ThemisStrategy {
            pool: SeedPool::new(64),
            frontier: 0.0,
            last_case_fresh: true,
        }
    }
}

impl Default for ThemisStrategy {
    fn default() -> Self {
        Self::new()
    }
}

impl Strategy for ThemisStrategy {
    fn name(&self) -> &'static str {
        "Themis"
    }

    fn next_case(&mut self, ctx: &mut GenCtx<'_>) -> TestCase {
        // Keep a stream of fresh random cases mixed in (exploration), but
        // mostly mutate pooled high-variance seeds (exploitation).
        if self.pool.is_empty() || ctx.rng.random_bool(0.10) {
            self.last_case_fresh = true;
            gen::random_case(ctx.model, ctx.rng, ctx.max_len)
        } else {
            self.last_case_fresh = false;
            let parent = self.pool.pick(ctx.rng).expect("pool nonempty").clone();
            mutate::mutate(&parent, ctx.model, ctx.rng, ctx.max_len)
        }
    }

    fn feedback(&mut self, case: &TestCase, fb: &ExecFeedback) {
        // Admit seeds whose execution *increased* the load variance or
        // pushed the frontier, and always admit failure-triggering cases
        // (Figure 6 step 9). Scoring rewards the variance delta most: the
        // goal is sequences that keep driving nodes apart, not sequences
        // that merely ran while the cluster happened to be imbalanced.
        let interesting =
            fb.found_failure || fb.variance_delta > 1e-4 || fb.variance > self.frontier;
        if fb.variance > self.frontier {
            self.frontier = fb.variance;
        }
        if interesting && !case.is_empty() {
            let score = fb.variance
                + 5.0 * fb.variance_delta.max(0.0)
                + if fb.found_failure { 1e6 } else { 0.0 };
            self.pool.push(case.clone(), score);
        }
    }

    fn on_reset(&mut self) {
        // Accumulated load is gone; variance must be rebuilt from scratch,
        // but proven sequences stay useful as mutation parents.
        self.frontier = 0.0;
    }
}

// ---------------------------------------------------------------------
// Themis⁻: the ablation (no load variance model, random sequences).
// ---------------------------------------------------------------------

/// Themis with the load variance model disabled: operation sequences over
/// the full grammar, generated randomly with no feedback (Section 6.3).
#[derive(Debug, Default)]
pub struct ThemisMinus;

impl Strategy for ThemisMinus {
    fn name(&self) -> &'static str {
        "Themis-"
    }

    fn next_case(&mut self, ctx: &mut GenCtx<'_>) -> TestCase {
        gen::random_case(ctx.model, ctx.rng, ctx.max_len)
    }

    fn feedback(&mut self, _case: &TestCase, _fb: &ExecFeedback) {}
}

// ---------------------------------------------------------------------
// Fix_req: fixed request workload, coverage-guided configuration fuzzing
// (the CrashFuzz-style baseline).
// ---------------------------------------------------------------------

/// Fixed client workload replayed every iteration while the configuration
/// input space is fuzzed with coverage feedback.
pub struct FixReq {
    pool: SeedPool,
    last_coverage: u64,
}

impl FixReq {
    /// Creates the baseline.
    pub fn new() -> Self {
        FixReq {
            pool: SeedPool::new(64),
            last_coverage: 0,
        }
    }

    /// The fixed request script: a generic SmallFile-style block whose
    /// operator pattern *and data sizes* never change. File names are
    /// re-instantiated so the script stays executable as the namespace
    /// evolves, but the workload itself is fixed — the defining property of
    /// this baseline.
    fn fixed_request_block(ctx: &mut GenCtx<'_>) -> Vec<Operation> {
        use crate::spec::Operand;
        const MIB: u64 = 1024 * 1024;
        let a = ctx.model.fresh_name(ctx.rng);
        let b = ctx.model.fresh_name(ctx.rng);
        vec![
            Operation::new(
                Operator::Create,
                vec![Operand::FileName(a.clone()), Operand::Size(8 * MIB)],
            ),
            Operation::new(
                Operator::Create,
                vec![Operand::FileName(b.clone()), Operand::Size(8 * MIB)],
            ),
            Operation::new(
                Operator::Append,
                vec![Operand::FileName(a.clone()), Operand::Size(4 * MIB)],
            ),
            Operation::new(
                Operator::Overwrite,
                vec![Operand::FileName(b), Operand::Size(16 * MIB)],
            ),
            Operation::new(Operator::Open, vec![Operand::FileName(a.clone())]),
            Operation::new(Operator::Delete, vec![Operand::FileName(a)]),
        ]
    }
}

impl Default for FixReq {
    fn default() -> Self {
        Self::new()
    }
}

impl Strategy for FixReq {
    fn name(&self) -> &'static str {
        "Fix_req"
    }

    fn next_case(&mut self, ctx: &mut GenCtx<'_>) -> TestCase {
        let config_part = if self.pool.is_empty() || ctx.rng.random_bool(0.3) {
            gen::config_only_case(ctx.model, ctx.rng, 4)
        } else {
            let parent = self.pool.pick(ctx.rng).expect("pool nonempty").clone();
            mutate::mutate_with(&parent, ctx.model, ctx.rng, 4, OpDraw::ConfigOnly)
        };
        let mut ops = Self::fixed_request_block(ctx);
        ops.extend(config_part.ops);
        TestCase::new(ops)
    }

    fn feedback(&mut self, case: &TestCase, fb: &ExecFeedback) {
        if fb.coverage > self.last_coverage {
            // Pool only the fuzzed (configuration) part of the case.
            let config_ops: Vec<Operation> = case
                .ops
                .iter()
                .filter(|o| o.opt.is_config_op())
                .cloned()
                .collect();
            if !config_ops.is_empty() {
                self.pool.push(
                    TestCase::new(config_ops),
                    (fb.coverage - self.last_coverage) as f64,
                );
            }
        }
        self.last_coverage = fb.coverage;
    }
}

// ---------------------------------------------------------------------
// Fix_conf: fixed configuration, coverage-guided request fuzzing
// (the SmallFile/Filebench-style baseline).
// ---------------------------------------------------------------------

/// Static cluster configuration; only the client-request space is fuzzed,
/// with coverage feedback.
pub struct FixConf {
    pool: SeedPool,
    last_coverage: u64,
}

impl FixConf {
    /// Creates the baseline.
    pub fn new() -> Self {
        FixConf {
            pool: SeedPool::new(64),
            last_coverage: 0,
        }
    }
}

impl Default for FixConf {
    fn default() -> Self {
        Self::new()
    }
}

impl Strategy for FixConf {
    fn name(&self) -> &'static str {
        "Fix_conf"
    }

    fn next_case(&mut self, ctx: &mut GenCtx<'_>) -> TestCase {
        if self.pool.is_empty() || ctx.rng.random_bool(0.3) {
            gen::request_only_case(ctx.model, ctx.rng, ctx.max_len)
        } else {
            let parent = self.pool.pick(ctx.rng).expect("pool nonempty").clone();
            mutate::mutate_with(&parent, ctx.model, ctx.rng, ctx.max_len, OpDraw::FileOnly)
        }
    }

    fn feedback(&mut self, case: &TestCase, fb: &ExecFeedback) {
        if fb.coverage > self.last_coverage && !case.is_empty() {
            self.pool
                .push(case.clone(), (fb.coverage - self.last_coverage) as f64);
        }
        self.last_coverage = fb.coverage;
    }
}

// ---------------------------------------------------------------------
// Alternate: Janus-style alternation between the two input spaces.
// ---------------------------------------------------------------------

/// Alternate generation: apply a random configuration, then explore the
/// request space with coverage guidance until coverage converges (no
/// growth for `stall_limit` iterations), then pick a new configuration.
pub struct Alternate {
    pool: SeedPool,
    last_coverage: u64,
    stalled: u32,
    /// Iterations without coverage growth that end a request phase.
    stall_limit: u32,
    /// Hard cap on request-phase length: even while coverage trickles in,
    /// the phase eventually converges and a new configuration is drawn.
    phase_cap: u32,
    phase_iters: u32,
    need_config_phase: bool,
}

impl Alternate {
    /// Creates the baseline with the default convergence window.
    pub fn new() -> Self {
        Alternate {
            pool: SeedPool::new(64),
            last_coverage: 0,
            stalled: 0,
            stall_limit: 40,
            phase_cap: 120,
            phase_iters: 0,
            need_config_phase: true,
        }
    }
}

impl Default for Alternate {
    fn default() -> Self {
        Self::new()
    }
}

impl Strategy for Alternate {
    fn name(&self) -> &'static str {
        "Alternate"
    }

    fn next_case(&mut self, ctx: &mut GenCtx<'_>) -> TestCase {
        if self.need_config_phase {
            self.need_config_phase = false;
            self.stalled = 0;
            self.phase_iters = 0;
            // Step 1: a fresh random configuration for the next phase.
            return gen::config_only_case(ctx.model, ctx.rng, 4);
        }
        self.phase_iters += 1;
        if self.phase_iters >= self.phase_cap {
            self.need_config_phase = true;
        }
        // Step 2: coverage-guided request exploration.
        if self.pool.is_empty() || ctx.rng.random_bool(0.3) {
            gen::request_only_case(ctx.model, ctx.rng, ctx.max_len)
        } else {
            let parent = self.pool.pick(ctx.rng).expect("pool nonempty").clone();
            mutate::mutate_with(&parent, ctx.model, ctx.rng, ctx.max_len, OpDraw::FileOnly)
        }
    }

    fn feedback(&mut self, case: &TestCase, fb: &ExecFeedback) {
        if fb.coverage > self.last_coverage {
            self.stalled = 0;
            if !case.is_empty() && case.ops.iter().all(|o| o.opt.is_file_op()) {
                self.pool
                    .push(case.clone(), (fb.coverage - self.last_coverage) as f64);
            }
        } else {
            self.stalled += 1;
            if self.stalled >= self.stall_limit {
                // Step 3: coverage converged — next iteration reconfigures.
                self.need_config_phase = true;
            }
        }
        self.last_coverage = fb.coverage;
    }
}

// ---------------------------------------------------------------------
// Concurrent: independent concurrent generation of both spaces.
// ---------------------------------------------------------------------

/// Concurrent generation: every iteration independently draws a request
/// sequence and a configuration sequence and interleaves them randomly.
/// Because the two generators are independent, runtime feedback cannot be
/// attributed and the search is unguided (Section 3.4, Method 3).
#[derive(Debug, Default)]
pub struct Concurrent;

impl Strategy for Concurrent {
    fn name(&self) -> &'static str {
        "Concurrent"
    }

    fn next_case(&mut self, ctx: &mut GenCtx<'_>) -> TestCase {
        let req = gen::request_only_case(ctx.model, ctx.rng, ctx.max_len - 2);
        let conf = gen::config_only_case(ctx.model, ctx.rng, 3);
        // Random interleaving (merge-shuffle preserving both orders).
        let mut ops = Vec::with_capacity(req.ops.len() + conf.ops.len());
        let (mut i, mut j) = (0, 0);
        while i < req.ops.len() || j < conf.ops.len() {
            let take_req = if i >= req.ops.len() {
                false
            } else if j >= conf.ops.len() {
                true
            } else {
                ctx.rng.random_bool(0.5)
            };
            if take_req {
                ops.push(req.ops[i].clone());
                i += 1;
            } else {
                ops.push(conf.ops[j].clone());
                j += 1;
            }
        }
        TestCase::new(ops)
    }

    fn feedback(&mut self, _case: &TestCase, _fb: &ExecFeedback) {}
}

/// Instantiates a strategy by table name (used by the bench harness).
pub fn by_name(name: &str) -> Option<Box<dyn Strategy>> {
    match name {
        "Themis" => Some(Box::new(ThemisStrategy::new())),
        "Themis-" => Some(Box::new(ThemisMinus)),
        "Fix_req" => Some(Box::new(FixReq::new())),
        "Fix_conf" => Some(Box::new(FixConf::new())),
        "Alternate" => Some(Box::new(Alternate::new())),
        "Concurrent" => Some(Box::new(Concurrent)),
        _ => None,
    }
}

/// The five strategy names of the paper's main comparison (Tables 3–5).
pub const COMPARISON_STRATEGIES: [&str; 5] =
    ["Themis", "Fix_req", "Fix_conf", "Alternate", "Concurrent"];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptor::NodeInventory;
    use rand::SeedableRng;

    fn ctx_parts() -> (InputModel, StdRng) {
        let mut m = InputModel::new();
        m.sync(&NodeInventory {
            mgmt: vec![0, 1],
            storage: vec![2, 3, 4],
            volumes: vec![10, 11],
            free_space: 1 << 30,
            files: vec!["/a".into()],
            dirs: vec![],
        });
        (m, StdRng::seed_from_u64(21))
    }

    fn run_n(strat: &mut dyn Strategy, n: usize) -> Vec<TestCase> {
        let (mut m, mut r) = ctx_parts();
        let mut out = Vec::new();
        for i in 0..n {
            let case = {
                let mut ctx = GenCtx {
                    model: &mut m,
                    rng: &mut r,
                    max_len: 8,
                };
                strat.next_case(&mut ctx)
            };
            let fb = ExecFeedback {
                variance: (i % 7) as f64 * 0.1,
                variance_delta: 0.05,
                coverage: (i * 13) as u64,
                found_failure: false,
            };
            strat.feedback(&case, &fb);
            out.push(case);
        }
        out
    }

    #[test]
    fn all_strategies_produce_well_formed_cases() {
        for name in COMPARISON_STRATEGIES.iter().chain(["Themis-"].iter()) {
            let mut s = by_name(name).expect("known strategy");
            for case in run_n(s.as_mut(), 120) {
                assert!(case.well_formed(), "{name}: {case}");
                assert!(!case.is_empty(), "{name} produced empty case");
            }
        }
    }

    #[test]
    fn fix_conf_never_emits_config_ops() {
        let mut s = FixConf::new();
        for case in run_n(&mut s, 200) {
            assert!(case.ops.iter().all(|o| o.opt.is_file_op()), "{case}");
        }
    }

    #[test]
    fn fix_req_requests_are_the_fixed_pattern() {
        let mut s = FixReq::new();
        for case in run_n(&mut s, 50) {
            let file_ops: Vec<Operator> = case
                .ops
                .iter()
                .filter(|o| o.opt.is_file_op())
                .map(|o| o.opt)
                .collect();
            assert_eq!(
                file_ops,
                vec![
                    Operator::Create,
                    Operator::Create,
                    Operator::Append,
                    Operator::Overwrite,
                    Operator::Open,
                    Operator::Delete
                ],
                "Fix_req must replay its fixed request script"
            );
            assert!(
                case.ops.iter().any(|o| o.opt.is_config_op()),
                "config part is fuzzed"
            );
        }
    }

    #[test]
    fn concurrent_mixes_both_spaces() {
        let mut s = Concurrent;
        let cases = run_n(&mut s, 100);
        let mixed = cases.iter().filter(|c| c.mixes_input_spaces()).count();
        assert!(
            mixed > 90,
            "concurrent cases should nearly always mix spaces: {mixed}"
        );
    }

    #[test]
    fn alternate_starts_with_a_config_phase() {
        let (mut m, mut r) = ctx_parts();
        let mut s = Alternate::new();
        let first = {
            let mut ctx = GenCtx {
                model: &mut m,
                rng: &mut r,
                max_len: 8,
            };
            s.next_case(&mut ctx)
        };
        assert!(first.ops.iter().all(|o| o.opt.is_config_op()));
        // Subsequent phases are request-only until coverage stalls.
        let second = {
            let mut ctx = GenCtx {
                model: &mut m,
                rng: &mut r,
                max_len: 8,
            };
            s.next_case(&mut ctx)
        };
        assert!(second.ops.iter().all(|o| o.opt.is_file_op()));
    }

    #[test]
    fn alternate_reconfigures_after_stall() {
        let (mut m, mut r) = ctx_parts();
        let mut s = Alternate::new();
        s.stall_limit = 3;
        // Config phase.
        {
            let mut ctx = GenCtx {
                model: &mut m,
                rng: &mut r,
                max_len: 8,
            };
            let _ = s.next_case(&mut ctx);
        }
        // Stall coverage for stall_limit iterations.
        for _ in 0..3 {
            let case = {
                let mut ctx = GenCtx {
                    model: &mut m,
                    rng: &mut r,
                    max_len: 8,
                };
                s.next_case(&mut ctx)
            };
            s.feedback(
                &case,
                &ExecFeedback {
                    variance: 0.0,
                    variance_delta: 0.0,
                    coverage: 0,
                    found_failure: false,
                },
            );
        }
        let next = {
            let mut ctx = GenCtx {
                model: &mut m,
                rng: &mut r,
                max_len: 8,
            };
            s.next_case(&mut ctx)
        };
        assert!(
            next.ops.iter().all(|o| o.opt.is_config_op()),
            "a stalled Alternate must start a new config phase"
        );
    }

    #[test]
    fn themis_pools_variance_frontier_cases() {
        let (mut m, mut r) = ctx_parts();
        let mut s = ThemisStrategy::new();
        let case = {
            let mut ctx = GenCtx {
                model: &mut m,
                rng: &mut r,
                max_len: 8,
            };
            s.next_case(&mut ctx)
        };
        s.feedback(
            &case,
            &ExecFeedback {
                variance: 0.5,
                variance_delta: 0.5,
                coverage: 0,
                found_failure: false,
            },
        );
        assert_eq!(s.pool.len(), 1);
        // Lower variance is not admitted once the frontier is higher.
        s.feedback(
            &case,
            &ExecFeedback {
                variance: 0.1,
                variance_delta: -0.4,
                coverage: 0,
                found_failure: false,
            },
        );
        assert_eq!(s.pool.len(), 1);
        // A failure-triggering case is always admitted.
        s.feedback(
            &case,
            &ExecFeedback {
                variance: 0.0,
                variance_delta: 0.0,
                coverage: 0,
                found_failure: true,
            },
        );
        assert_eq!(s.pool.len(), 2);
    }

    #[test]
    fn themis_reset_clears_frontier_but_keeps_seeds() {
        let (mut m, mut r) = ctx_parts();
        let mut s = ThemisStrategy::new();
        let case = {
            let mut ctx = GenCtx {
                model: &mut m,
                rng: &mut r,
                max_len: 8,
            };
            s.next_case(&mut ctx)
        };
        s.feedback(
            &case,
            &ExecFeedback {
                variance: 5.0,
                variance_delta: 5.0,
                coverage: 0,
                found_failure: false,
            },
        );
        s.on_reset();
        assert_eq!(s.frontier, 0.0);
        assert_eq!(s.pool.len(), 1);
        // Post-reset low variance is admissible again.
        s.feedback(
            &case,
            &ExecFeedback {
                variance: 0.2,
                variance_delta: 0.2,
                coverage: 0,
                found_failure: false,
            },
        );
        assert_eq!(s.pool.len(), 2);
    }

    #[test]
    fn by_name_knows_all_strategies() {
        for name in COMPARISON_STRATEGIES {
            assert!(by_name(name).is_some(), "{name}");
        }
        assert!(by_name("Themis-").is_some());
        assert!(by_name("nope").is_none());
    }
}
