//! The Interaction Adaptor interface (Figure 10 of the paper).
//!
//! Themis is non-intrusive: it cannot modify the DFS under test. Everything
//! it knows arrives through this trait — sending operations
//! (`operation.send()`), monitoring load (`LoadMonitor()`), driving the
//! rebalance APIs used by the detector's double-check, and resetting the
//! system between failure discoveries. Adapting Themis to a new DFS means
//! implementing exactly this trait (the paper reports only these two
//! interfaces need porting).

use crate::spec::Operation;
use serde::{Deserialize, Serialize};

/// Role of a node as seen by the load monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Role {
    /// Metadata management node.
    Management,
    /// Data storage node.
    Storage,
}

/// Per-node load data collected by `LoadMonitor()` (Figure 8's inputs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeLoad {
    /// Node identifier (opaque to Themis).
    pub node: u64,
    /// Node role.
    pub role: Role,
    /// Whether the node is up.
    pub online: bool,
    /// Whether the node is down *and* unresponsive (crashed, not removed).
    pub crashed: bool,
    /// CPU utilization (sum over cores).
    pub cpu: f64,
    /// Requests handled per unit time.
    pub rps: f64,
    /// Read IO operations per unit time.
    pub read_io: f64,
    /// Write IO operations per unit time.
    pub write_io: f64,
    /// Bytes of file data stored.
    pub storage: u64,
    /// Storage capacity in bytes.
    pub capacity: u64,
    /// Milliseconds since the node joined the cluster (monitors report
    /// uptime; detectors use it to skip nodes that are still warming up).
    pub uptime_ms: u64,
}

impl NodeLoad {
    /// The node's aggregate network load (requests plus IO), the quantity
    /// the paper's network anomaly detector compares across nodes.
    pub fn network(&self) -> f64 {
        self.rps + self.read_io + self.write_io
    }
}

/// A cluster-wide load report at one instant.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LoadReport {
    /// Virtual time of collection (ms).
    pub time_ms: u64,
    /// One entry per node.
    pub nodes: Vec<NodeLoad>,
}

impl LoadReport {
    /// Online nodes of a role.
    pub fn by_role(&self, role: Role) -> impl Iterator<Item = &NodeLoad> {
        self.nodes
            .iter()
            .filter(move |n| n.role == role && n.online)
    }

    /// Nodes flagged as crashed.
    pub fn crashed(&self) -> impl Iterator<Item = &NodeLoad> {
        self.nodes.iter().filter(|n| n.crashed)
    }
}

/// A snapshot of the identifiers Themis needs to instantiate operands:
/// the file tree (`Tree_files`), node lists (`list_MN`, `list_S`), volume
/// list and remaining free space.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NodeInventory {
    /// Management node ids.
    pub mgmt: Vec<u64>,
    /// Storage node ids.
    pub storage: Vec<u64>,
    /// Volume ids.
    pub volumes: Vec<u64>,
    /// Remaining free space in bytes.
    pub free_space: u64,
    /// Existing file paths.
    pub files: Vec<String>,
    /// Existing directory paths.
    pub dirs: Vec<String>,
}

/// Errors surfaced by the adaptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdaptorError {
    /// The DFS rejected the operation (bad path, no space, etc.). This is a
    /// normal outcome during fuzzing, not a tester failure.
    Rejected(String),
    /// The DFS is unreachable (e.g. crashed cluster).
    Down(String),
}

impl std::fmt::Display for AdaptorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdaptorError::Rejected(m) => write!(f, "operation rejected: {m}"),
            AdaptorError::Down(m) => write!(f, "DFS unreachable: {m}"),
        }
    }
}

impl std::error::Error for AdaptorError {}

/// The DFS-facing interface of Themis.
///
/// Implementations translate Themis operations into target-specific
/// commands (for the simulated flavors, see the `adaptors` crate; a real
/// deployment would shell out to `hdfs`, `gluster`, `ceph`, `leofs-adm`
/// and read `/proc`, `df`, etc.).
pub trait DfsAdaptor {
    /// Human-readable target name (e.g. `"GlusterFS v12.0-sim"`).
    fn name(&self) -> String;

    /// Sends one operation to the DFS for execution.
    fn send(&mut self, op: &Operation) -> Result<(), AdaptorError>;

    /// Collects the current per-node load data.
    fn load_report(&mut self) -> LoadReport;

    /// Collects the current per-node load data into `out`, reusing its
    /// node buffer. The campaign loop calls this once per iteration with a
    /// long-lived report; adaptors with cheap incremental access should
    /// override it (the default delegates to [`Self::load_report`]).
    fn load_report_into(&mut self, out: &mut LoadReport) {
        *out = self.load_report();
    }

    /// Invokes the DFS's rebalance API.
    fn rebalance(&mut self);

    /// Polls the DFS's `rebalance state` API; `true` when done.
    fn rebalance_done(&mut self) -> bool;

    /// Lets `ms` of target time pass (the tester sleeping).
    fn wait(&mut self, ms: u64);

    /// Resets the DFS to its initial state (container re-deploy).
    fn reset(&mut self);

    /// Branch coverage counter of the instrumented target, if available.
    /// Coverage-guided baselines use this; Themis itself does not need it.
    fn coverage(&mut self) -> u64;

    /// Current target-side time in ms (virtual for simulated targets).
    fn now_ms(&mut self) -> u64;

    /// Lists current nodes/volumes/files for operand instantiation.
    fn inventory(&mut self) -> NodeInventory;

    /// Remaining free space in bytes (a cheap subset of [`Self::inventory`]
    /// refreshed every iteration for Size-operand boundary generation).
    fn free_space(&mut self) -> u64 {
        self.inventory().free_space
    }

    /// Current topology (node and volume ids, free space) without the file
    /// listing — refreshed every iteration so NodeId/VolumeId operands
    /// never go stale. The file tree is tracked incrementally by the input
    /// model instead.
    fn topology(&mut self) -> NodeInventory {
        let mut inv = self.inventory();
        inv.files.clear();
        inv.dirs.clear();
        inv
    }

    /// Optional fork/restore capability. Adaptors whose target can cheaply
    /// save and rewind execution state (the simulator; a real deployment
    /// on a filesystem with snapshots) return `Some`, which lets the
    /// campaign's fork engine replay only the divergent suffix of each
    /// test case instead of the whole case from a reset. The default is
    /// `None`: the campaign then falls back to full replay and produces
    /// bit-identical results, just slower.
    fn snapshots(&mut self) -> Option<&mut dyn SnapshotCapable> {
        None
    }

    /// Optional crash-point exploration capability (see
    /// [`CrashExplorable`]). Targets that can decompose their
    /// migration/rebalance pipeline into deterministic crash points return
    /// `Some`; the default `None` means the crash campaign mode is
    /// unavailable for this target.
    fn crash_points(&mut self) -> Option<&mut dyn CrashExplorable> {
        None
    }
}

/// One crash-consistency violation reported by the target's oracle after
/// a crash-and-recover cycle, in adaptor-neutral terms.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashOracleViolation {
    /// Stable snake_case class name (e.g. `orphan_replica`); targets keep
    /// these names fixed so reports aggregate across runs.
    pub class: String,
    /// First-principles description of the inconsistency.
    pub detail: String,
}

impl std::fmt::Display for CrashOracleViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.class, self.detail)
    }
}

/// Deterministic crash-point instrumentation over the target's
/// migration/rebalance pipeline, exposed by adaptors through
/// [`DfsAdaptor::crash_points`].
///
/// Contract (the explorer in `crate::crash` depends on each of these):
/// - Crash points are **deterministic**: two runs from identical target
///   state under identical driving pass the same points in the same
///   order, so an index recorded while enumerating addresses the same
///   micro-step when replayed with [`CrashExplorable::arm_crash_at`].
/// - Arming is **tester-side probe state**: with nothing armed the target
///   behaves bit-identically to an uninstrumented one, and enumeration
///   mode (count, never crash) is behaviour-transparent too.
/// - A fired crash halts the interrupted migration exactly as a machine
///   power failure would; [`CrashExplorable::recover`] restarts the
///   machine and runs the target's restart-time repair.
pub trait CrashExplorable {
    /// Arms enumeration mode: subsequent driving counts and labels every
    /// crash point passed without crashing anything.
    fn arm_enumeration(&mut self);

    /// Arms a crash at the `k`-th (0-based) crash point passed from now on.
    fn arm_crash_at(&mut self, k: u64);

    /// Disarms the instrumentation, returning the labels of the crash
    /// points passed since arming (empty outside enumeration mode).
    fn disarm(&mut self) -> Vec<String>;

    /// Whether an armed crash has fired and awaits recovery.
    fn crash_fired(&mut self) -> bool;

    /// Restarts the crashed machine and runs the target's recovery.
    /// Returns the label of the interrupted micro-step, or `None` if no
    /// crash is pending.
    fn recover(&mut self) -> Option<String>;

    /// Runs the target's crash-consistency oracle over the recovered
    /// state; `None` means every invariant holds.
    fn check_invariants(&mut self) -> Option<CrashOracleViolation>;

    /// The canonical driving quantum of the target's migration pipeline
    /// in ms (one balancer step). The explorer waits in multiples of this
    /// so enumeration and crash runs stay aligned.
    fn window_step_ms(&self) -> u64;

    /// Opts the target in or out of its always-on state audit while
    /// exploring (the release-mode oracle). Default: no-op for targets
    /// whose audit is not switchable.
    fn set_runtime_audit(&mut self, on: bool) {
        let _ = on;
    }
}

/// Cheap deterministic fork/restore over target state, exposed by
/// adaptors through [`DfsAdaptor::snapshots`].
///
/// Semantics contract (the fork engine depends on each of these):
/// - Marks form a **stack along one execution lineage**: restoring a mark
///   invalidates every mark taken after it.
/// - [`SnapshotCapable::restore`] rewinds *everything* the target's
///   behaviour depends on — including its clock — so replaying the same
///   operations after a restore reproduces bit-identical outcomes.
/// - A target reset (via [`DfsAdaptor::reset`]) abandons the lineage:
///   all marks die and `restore` returns `false` for them.
pub trait SnapshotCapable {
    /// Marks the current execution point; the id stays valid until
    /// restored past, released, or the target is reset.
    fn snapshot(&mut self) -> u64;

    /// Rewinds to a mark. Returns `false` (state untouched) if the mark
    /// no longer exists; the caller must then rebuild from a reset.
    fn restore(&mut self, id: u64) -> bool;

    /// Drops a mark without restoring it.
    fn release(&mut self, id: u64);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(role: Role, online: bool, crashed: bool) -> NodeLoad {
        NodeLoad {
            node: 0,
            role,
            online,
            crashed,
            cpu: 1.0,
            rps: 2.0,
            read_io: 3.0,
            write_io: 4.0,
            storage: 5,
            capacity: 10,
            uptime_ms: 1 << 40,
        }
    }

    #[test]
    fn network_sums_components() {
        let n = node(Role::Management, true, false);
        assert!((n.network() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn report_filters_by_role_and_liveness() {
        let report = LoadReport {
            time_ms: 0,
            nodes: vec![
                node(Role::Management, true, false),
                node(Role::Storage, true, false),
                node(Role::Storage, false, true),
            ],
        };
        assert_eq!(report.by_role(Role::Storage).count(), 1);
        assert_eq!(report.by_role(Role::Management).count(), 1);
        assert_eq!(report.crashed().count(), 1);
    }

    #[test]
    fn adaptor_error_display() {
        assert!(AdaptorError::Rejected("x".into())
            .to_string()
            .contains("rejected"));
        assert!(AdaptorError::Down("y".into())
            .to_string()
            .contains("unreachable"));
    }
}
