//! Dynamic threshold adjustment (Section 7 of the paper).
//!
//! The paper proposes, as future work, to "initiate the imbalance detector
//! with a lower t value (e.g., 20%) and incrementally increase it upon
//! encountering false positives". This module implements that scheme: the
//! campaign starts sensitive, and every confirmation that the operator (or
//! an oracle-backed harness) marks as a false positive nudges the
//! threshold upward until false positives stop.

use serde::{Deserialize, Serialize};

/// Configuration of the adaptive threshold controller.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Starting threshold (the paper suggests 0.20).
    pub initial_t: f64,
    /// Increment applied per false positive.
    pub step: f64,
    /// Upper bound — beyond this, raising t costs true positives
    /// (Table 7 shows recall loss above 25-30%).
    pub max_t: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            initial_t: 0.20,
            step: 0.025,
            max_t: 0.35,
        }
    }
}

/// The adaptive threshold controller.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveThreshold {
    cfg: AdaptiveConfig,
    current: f64,
    false_positives: u32,
    true_positives: u32,
}

impl AdaptiveThreshold {
    /// Creates a controller at the configured starting threshold.
    pub fn new(cfg: AdaptiveConfig) -> Self {
        AdaptiveThreshold {
            current: cfg.initial_t.min(cfg.max_t),
            cfg,
            false_positives: 0,
            true_positives: 0,
        }
    }

    /// The threshold the detector should currently use.
    pub fn threshold(&self) -> f64 {
        self.current
    }

    /// Reports that a confirmation turned out to be a false positive;
    /// the threshold rises by one step (bounded by `max_t`).
    pub fn report_false_positive(&mut self) {
        self.false_positives += 1;
        self.current = (self.current + self.cfg.step).min(self.cfg.max_t);
    }

    /// Reports a confirmed true positive (recorded; the threshold holds —
    /// lowering it again on success would oscillate).
    pub fn report_true_positive(&mut self) {
        self.true_positives += 1;
    }

    /// False positives observed so far.
    pub fn false_positive_count(&self) -> u32 {
        self.false_positives
    }

    /// True positives observed so far.
    pub fn true_positive_count(&self) -> u32 {
        self.true_positives
    }

    /// Whether the controller has saturated at its upper bound.
    pub fn saturated(&self) -> bool {
        (self.current - self.cfg.max_t).abs() < f64::EPSILON
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_initial_threshold() {
        let a = AdaptiveThreshold::new(AdaptiveConfig::default());
        assert!((a.threshold() - 0.20).abs() < 1e-12);
        assert!(!a.saturated());
    }

    #[test]
    fn false_positives_raise_threshold() {
        let mut a = AdaptiveThreshold::new(AdaptiveConfig::default());
        a.report_false_positive();
        a.report_false_positive();
        assert!((a.threshold() - 0.25).abs() < 1e-12);
        assert_eq!(a.false_positive_count(), 2);
    }

    #[test]
    fn threshold_is_bounded_above() {
        let mut a = AdaptiveThreshold::new(AdaptiveConfig::default());
        for _ in 0..100 {
            a.report_false_positive();
        }
        assert!((a.threshold() - 0.35).abs() < 1e-12);
        assert!(a.saturated());
    }

    #[test]
    fn true_positives_hold_the_threshold() {
        let mut a = AdaptiveThreshold::new(AdaptiveConfig::default());
        a.report_false_positive();
        let t = a.threshold();
        a.report_true_positive();
        a.report_true_positive();
        assert_eq!(a.threshold(), t);
        assert_eq!(a.true_positive_count(), 2);
    }

    #[test]
    fn initial_above_max_is_clamped() {
        let a = AdaptiveThreshold::new(AdaptiveConfig {
            initial_t: 0.9,
            step: 0.05,
            max_t: 0.3,
        });
        assert!((a.threshold() - 0.3).abs() < 1e-12);
    }
}
