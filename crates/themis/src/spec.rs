//! The test-case specification of Themis (Figure 7 of the paper).
//!
//! A test case is an operation sequence `opSeq`; each operation is an
//! operator `opt` with one or more operands `opd`. Operators fall into
//! three categories: `file_op` models client-request inputs, `node_op` and
//! `volume_op` model system-configuration inputs. Representing both input
//! spaces as one sequence is the paper's key insight: it makes the combined
//! space explorable by sequence-mutation fuzzing.

use serde::{Deserialize, Serialize};

/// The 17 concrete operators of the grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Operator {
    /// `create fileName size` — create a file.
    Create,
    /// `delete fileName` — delete a file.
    Delete,
    /// `append fileName size` — append data.
    Append,
    /// `overwrite fileName size` — replace contents.
    Overwrite,
    /// `open fileName` — read a file.
    Open,
    /// `truncate-overwrite fileName size` — truncate then write.
    TruncateOverwrite,
    /// `mkdir fileName` — create a directory.
    Mkdir,
    /// `rmdir fileName` — remove a directory.
    Rmdir,
    /// `rename fileName fileName` — move a file or directory.
    Rename,
    /// `add_MN` — add a metadata management node.
    AddMn,
    /// `remove_MN nodeId` — remove a management node.
    RemoveMn,
    /// `add_storage size` — add a storage node (volume capacity operand).
    AddStorage,
    /// `remove_storage nodeId` — remove a storage node.
    RemoveStorage,
    /// `add_volume nodeId size` — attach a volume to a storage node.
    AddVolume,
    /// `remove_volume volumeId` — detach a volume.
    RemoveVolume,
    /// `expand_volume volumeId size` — grow a volume.
    ExpandVolume,
    /// `reduce_volume volumeId size` — shrink a volume.
    ReduceVolume,
}

/// All operators, in grammar order. `t = 17` in the paper's initial
/// generation (each operator drawn with probability `1/t`).
pub const ALL_OPERATORS: [Operator; 17] = [
    Operator::Create,
    Operator::Delete,
    Operator::Append,
    Operator::Overwrite,
    Operator::Open,
    Operator::TruncateOverwrite,
    Operator::Mkdir,
    Operator::Rmdir,
    Operator::Rename,
    Operator::AddMn,
    Operator::RemoveMn,
    Operator::AddStorage,
    Operator::RemoveStorage,
    Operator::AddVolume,
    Operator::RemoveVolume,
    Operator::ExpandVolume,
    Operator::ReduceVolume,
];

/// Operators modelling client requests (`file_op`).
pub const FILE_OPERATORS: [Operator; 9] = [
    Operator::Create,
    Operator::Delete,
    Operator::Append,
    Operator::Overwrite,
    Operator::Open,
    Operator::TruncateOverwrite,
    Operator::Mkdir,
    Operator::Rmdir,
    Operator::Rename,
];

/// Operators modelling system configuration (`node_op` | `volume_op`).
pub const CONFIG_OPERATORS: [Operator; 8] = [
    Operator::AddMn,
    Operator::RemoveMn,
    Operator::AddStorage,
    Operator::RemoveStorage,
    Operator::AddVolume,
    Operator::RemoveVolume,
    Operator::ExpandVolume,
    Operator::ReduceVolume,
];

impl Operator {
    /// Whether this operator is a client-request (`file_op`).
    pub fn is_file_op(self) -> bool {
        FILE_OPERATORS.contains(&self)
    }

    /// Whether this operator is a configuration change.
    pub fn is_config_op(self) -> bool {
        !self.is_file_op()
    }

    /// The operand categories this operator requires, in order.
    pub fn operand_shape(self) -> &'static [OperandKind] {
        use OperandKind::*;
        match self {
            Operator::Create => &[FileName, Size],
            Operator::Delete => &[FileName],
            Operator::Append => &[FileName, Size],
            Operator::Overwrite => &[FileName, Size],
            Operator::Open => &[FileName],
            Operator::TruncateOverwrite => &[FileName, Size],
            Operator::Mkdir => &[FileName],
            Operator::Rmdir => &[FileName],
            Operator::Rename => &[FileName, FileName],
            Operator::AddMn => &[],
            Operator::RemoveMn => &[NodeId],
            Operator::AddStorage => &[Size],
            Operator::RemoveStorage => &[NodeId],
            Operator::AddVolume => &[NodeId, Size],
            Operator::RemoveVolume => &[VolumeId],
            Operator::ExpandVolume => &[VolumeId, Size],
            Operator::ReduceVolume => &[VolumeId, Size],
        }
    }

    /// Grammar spelling of the operator.
    pub fn spelling(self) -> &'static str {
        match self {
            Operator::Create => "create",
            Operator::Delete => "delete",
            Operator::Append => "append",
            Operator::Overwrite => "overwrite",
            Operator::Open => "open",
            Operator::TruncateOverwrite => "truncate-overwrite",
            Operator::Mkdir => "mkdir",
            Operator::Rmdir => "rmdir",
            Operator::Rename => "rename",
            Operator::AddMn => "add_MN",
            Operator::RemoveMn => "remove_MN",
            Operator::AddStorage => "add_storage",
            Operator::RemoveStorage => "remove_storage",
            Operator::AddVolume => "add_volume",
            Operator::RemoveVolume => "remove_volume",
            Operator::ExpandVolume => "expand_volume",
            Operator::ReduceVolume => "reduce_volume",
        }
    }
}

/// The category of one operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OperandKind {
    /// A path in the file tree (`Tree_files`).
    FileName,
    /// A node identifier (from `list_MN` or `list_S`).
    NodeId,
    /// A volume identifier.
    VolumeId,
    /// A byte count.
    Size,
}

/// One instantiated operand.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// A path.
    FileName(String),
    /// A node id.
    NodeId(u64),
    /// A volume id.
    VolumeId(u64),
    /// A byte count.
    Size(u64),
}

impl Operand {
    /// The operand's category.
    pub fn kind(&self) -> OperandKind {
        match self {
            Operand::FileName(_) => OperandKind::FileName,
            Operand::NodeId(_) => OperandKind::NodeId,
            Operand::VolumeId(_) => OperandKind::VolumeId,
            Operand::Size(_) => OperandKind::Size,
        }
    }
}

impl std::fmt::Display for Operand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Operand::FileName(p) => write!(f, "{p}"),
            Operand::NodeId(n) => write!(f, "node{n}"),
            Operand::VolumeId(v) => write!(f, "vol{v}"),
            Operand::Size(s) => write!(f, "{s}B"),
        }
    }
}

/// One operation: an operator plus its operands.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Operation {
    /// The operator.
    pub opt: Operator,
    /// The operands (shape given by [`Operator::operand_shape`]).
    pub opds: Vec<Operand>,
}

impl Operation {
    /// Creates an operation, checking the operand shape.
    ///
    /// # Panics
    ///
    /// Panics if the operand kinds do not match the operator's shape; this
    /// is a programming error in a generator or mutator, never an input
    /// condition.
    pub fn new(opt: Operator, opds: Vec<Operand>) -> Self {
        let shape = opt.operand_shape();
        assert_eq!(
            shape.len(),
            opds.len(),
            "{opt:?} expects {} operands, got {}",
            shape.len(),
            opds.len()
        );
        for (expect, got) in shape.iter().zip(&opds) {
            assert_eq!(*expect, got.kind(), "{opt:?} operand kind mismatch");
        }
        Operation { opt, opds }
    }

    /// Whether the operation's operands match the operator's shape.
    pub fn well_formed(&self) -> bool {
        let shape = self.opt.operand_shape();
        shape.len() == self.opds.len() && shape.iter().zip(&self.opds).all(|(k, o)| *k == o.kind())
    }
}

impl std::fmt::Display for Operation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.opt.spelling())?;
        for opd in &self.opds {
            write!(f, " {opd}")?;
        }
        Ok(())
    }
}

/// A test case: a non-empty operation sequence (`opSeq`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct TestCase {
    /// The operation sequence.
    pub ops: Vec<Operation>,
}

impl TestCase {
    /// Creates a test case from operations.
    pub fn new(ops: Vec<Operation>) -> Self {
        TestCase { ops }
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the sequence is empty (invalid as a final test case but
    /// transiently possible during mutation).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Whether every operation is well-formed.
    pub fn well_formed(&self) -> bool {
        self.ops.iter().all(Operation::well_formed)
    }

    /// Whether the case touches both input spaces.
    pub fn mixes_input_spaces(&self) -> bool {
        self.ops.iter().any(|o| o.opt.is_file_op()) && self.ops.iter().any(|o| o.opt.is_config_op())
    }
}

impl std::fmt::Display for TestCase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{op}")?;
        }
        Ok(())
    }
}

pub mod json {
    //! Hand-rolled JSON encoding for test cases.
    //!
    //! The build environment has no crates-io access, so instead of
    //! `serde_json` the test-case wire format is implemented directly:
    //! `{"ops":[{"opt":"create","opds":[{"file":"/a"},{"size":100}]}]}`.
    //! Operators are encoded by their grammar [`spelling`], operands by a
    //! one-key object tagging the kind.
    //!
    //! [`spelling`]: super::Operator::spelling

    use super::{Operand, Operation, Operator, TestCase, ALL_OPERATORS};

    /// A malformed test-case document.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct ParseError {
        /// Byte offset the parser stopped at.
        pub at: usize,
        /// What went wrong.
        pub msg: String,
    }

    impl std::fmt::Display for ParseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(
                f,
                "test-case JSON parse error at byte {}: {}",
                self.at, self.msg
            )
        }
    }

    impl std::error::Error for ParseError {}

    /// Escapes a string into a JSON string literal (without quotes).
    pub fn escape_into(out: &mut String, s: &str) {
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
    }

    /// Serializes a test case.
    pub fn to_json(case: &TestCase) -> String {
        let mut out = String::with_capacity(32 + case.ops.len() * 48);
        out.push_str("{\"ops\":[");
        for (i, op) in case.ops.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"opt\":\"");
            out.push_str(op.opt.spelling());
            out.push_str("\",\"opds\":[");
            for (j, opd) in op.opds.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                match opd {
                    Operand::FileName(p) => {
                        out.push_str("{\"file\":\"");
                        escape_into(&mut out, p);
                        out.push_str("\"}");
                    }
                    Operand::NodeId(n) => {
                        out.push_str(&format!("{{\"node\":{n}}}"));
                    }
                    Operand::VolumeId(v) => {
                        out.push_str(&format!("{{\"vol\":{v}}}"));
                    }
                    Operand::Size(s) => {
                        out.push_str(&format!("{{\"size\":{s}}}"));
                    }
                }
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Parses a test case serialized by [`to_json`].
    pub fn from_json(text: &str) -> Result<TestCase, ParseError> {
        let mut p = Parser {
            b: text.as_bytes(),
            at: 0,
        };
        p.skip_ws();
        p.expect(b'{')?;
        p.key("ops")?;
        p.expect(b'[')?;
        let mut ops = Vec::new();
        p.skip_ws();
        if !p.eat(b']') {
            loop {
                ops.push(p.operation()?);
                p.skip_ws();
                if p.eat(b']') {
                    break;
                }
                p.expect(b',')?;
            }
        }
        p.skip_ws();
        p.expect(b'}')?;
        p.skip_ws();
        if p.at != p.b.len() {
            return Err(p.err("trailing data"));
        }
        Ok(TestCase { ops })
    }

    struct Parser<'a> {
        b: &'a [u8],
        at: usize,
    }

    impl<'a> Parser<'a> {
        fn err(&self, msg: impl Into<String>) -> ParseError {
            ParseError {
                at: self.at,
                msg: msg.into(),
            }
        }

        fn skip_ws(&mut self) {
            while self.at < self.b.len() && self.b[self.at].is_ascii_whitespace() {
                self.at += 1;
            }
        }

        fn peek(&self) -> Option<u8> {
            self.b.get(self.at).copied()
        }

        fn eat(&mut self, c: u8) -> bool {
            if self.peek() == Some(c) {
                self.at += 1;
                true
            } else {
                false
            }
        }

        fn expect(&mut self, c: u8) -> Result<(), ParseError> {
            self.skip_ws();
            if self.eat(c) {
                Ok(())
            } else {
                Err(self.err(format!("expected '{}'", c as char)))
            }
        }

        /// Consumes `"name":`.
        fn key(&mut self, name: &str) -> Result<(), ParseError> {
            self.skip_ws();
            let got = self.string()?;
            if got != name {
                return Err(self.err(format!("expected key \"{name}\", got \"{got}\"")));
            }
            self.expect(b':')
        }

        fn string(&mut self) -> Result<String, ParseError> {
            self.skip_ws();
            if !self.eat(b'"') {
                return Err(self.err("expected string"));
            }
            let mut out = String::new();
            loop {
                let Some(c) = self.peek() else {
                    return Err(self.err("unterminated string"));
                };
                self.at += 1;
                match c {
                    b'"' => return Ok(out),
                    b'\\' => {
                        let Some(e) = self.peek() else {
                            return Err(self.err("unterminated escape"));
                        };
                        self.at += 1;
                        match e {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'u' => {
                                if self.at + 4 > self.b.len() {
                                    return Err(self.err("truncated \\u escape"));
                                }
                                let hex = std::str::from_utf8(&self.b[self.at..self.at + 4])
                                    .map_err(|_| self.err("bad \\u escape"))?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| self.err("bad \\u escape"))?;
                                self.at += 4;
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| self.err("invalid codepoint"))?,
                                );
                            }
                            other => {
                                return Err(
                                    self.err(format!("unknown escape '\\{}'", other as char))
                                )
                            }
                        }
                    }
                    c if c < 0x80 => out.push(c as char),
                    _ => {
                        // Multi-byte UTF-8: find the full char from the
                        // source slice.
                        let start = self.at - 1;
                        let s = std::str::from_utf8(&self.b[start..])
                            .map_err(|_| self.err("invalid UTF-8"))?;
                        let ch = s.chars().next().unwrap();
                        self.at = start + ch.len_utf8();
                        out.push(ch);
                    }
                }
            }
        }

        fn number(&mut self) -> Result<u64, ParseError> {
            self.skip_ws();
            let start = self.at;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.at += 1;
            }
            if start == self.at {
                return Err(self.err("expected number"));
            }
            std::str::from_utf8(&self.b[start..self.at])
                .unwrap()
                .parse()
                .map_err(|_| self.err("number out of range"))
        }

        fn operation(&mut self) -> Result<Operation, ParseError> {
            self.expect(b'{')?;
            self.key("opt")?;
            let spelling = self.string()?;
            let opt = ALL_OPERATORS
                .iter()
                .copied()
                .find(|o| o.spelling() == spelling)
                .ok_or_else(|| self.err(format!("unknown operator \"{spelling}\"")))?;
            self.expect(b',')?;
            self.key("opds")?;
            self.expect(b'[')?;
            let mut opds = Vec::new();
            self.skip_ws();
            if !self.eat(b']') {
                loop {
                    opds.push(self.operand()?);
                    self.skip_ws();
                    if self.eat(b']') {
                        break;
                    }
                    self.expect(b',')?;
                }
            }
            self.expect(b'}')?;
            self.check_shape(opt, &opds)?;
            Ok(Operation { opt, opds })
        }

        /// Validates operand shape without going through the panicking
        /// [`Operation::new`] — bad input must be an `Err`, not a panic.
        fn check_shape(&self, opt: Operator, opds: &[Operand]) -> Result<(), ParseError> {
            let shape = opt.operand_shape();
            if shape.len() != opds.len() || !shape.iter().zip(opds).all(|(k, o)| *k == o.kind()) {
                return Err(self.err(format!("operand shape mismatch for {opt:?}")));
            }
            Ok(())
        }

        fn operand(&mut self) -> Result<Operand, ParseError> {
            self.expect(b'{')?;
            let tag = self.string()?;
            self.expect(b':')?;
            let opd = match tag.as_str() {
                "file" => Operand::FileName(self.string()?),
                "node" => Operand::NodeId(self.number()?),
                "vol" => Operand::VolumeId(self.number()?),
                "size" => Operand::Size(self.number()?),
                other => return Err(self.err(format!("unknown operand tag \"{other}\""))),
            };
            self.expect(b'}')?;
            Ok(opd)
        }
    }
}

impl TestCase {
    /// Serializes to the canonical JSON wire format ([`json::to_json`]).
    pub fn to_json(&self) -> String {
        json::to_json(self)
    }

    /// Parses the canonical JSON wire format ([`json::from_json`]).
    pub fn from_json(text: &str) -> Result<Self, json::ParseError> {
        json::from_json(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seventeen_distinct_operators() {
        let mut ops = ALL_OPERATORS.to_vec();
        ops.dedup();
        assert_eq!(ops.len(), 17);
        assert_eq!(FILE_OPERATORS.len() + CONFIG_OPERATORS.len(), 17);
    }

    #[test]
    fn file_and_config_partition() {
        for op in ALL_OPERATORS {
            assert!(op.is_file_op() ^ op.is_config_op());
        }
        assert!(Operator::Create.is_file_op());
        assert!(Operator::AddVolume.is_config_op());
    }

    #[test]
    fn operand_shapes_accept_matching_operands() {
        let op = Operation::new(
            Operator::Create,
            vec![Operand::FileName("/a".into()), Operand::Size(100)],
        );
        assert!(op.well_formed());
    }

    #[test]
    #[should_panic(expected = "expects 2 operands")]
    fn operand_arity_is_enforced() {
        let _ = Operation::new(Operator::Create, vec![Operand::FileName("/a".into())]);
    }

    #[test]
    #[should_panic(expected = "operand kind mismatch")]
    fn operand_kind_is_enforced() {
        let _ = Operation::new(Operator::Delete, vec![Operand::Size(1)]);
    }

    #[test]
    fn display_matches_grammar_spelling() {
        let op = Operation::new(
            Operator::Rename,
            vec![
                Operand::FileName("/a".into()),
                Operand::FileName("/b".into()),
            ],
        );
        assert_eq!(op.to_string(), "rename /a /b");
        let op = Operation::new(Operator::AddMn, vec![]);
        assert_eq!(op.to_string(), "add_MN");
        let op = Operation::new(
            Operator::ExpandVolume,
            vec![Operand::VolumeId(3), Operand::Size(1024)],
        );
        assert_eq!(op.to_string(), "expand_volume vol3 1024B");
    }

    #[test]
    fn testcase_mixes_input_spaces() {
        let file_only = TestCase::new(vec![Operation::new(
            Operator::Open,
            vec![Operand::FileName("/a".into())],
        )]);
        assert!(!file_only.mixes_input_spaces());
        let mixed = TestCase::new(vec![
            Operation::new(Operator::Open, vec![Operand::FileName("/a".into())]),
            Operation::new(Operator::AddMn, vec![]),
        ]);
        assert!(mixed.mixes_input_spaces());
    }

    #[test]
    fn testcase_display_joins_ops() {
        let tc = TestCase::new(vec![
            Operation::new(Operator::Mkdir, vec![Operand::FileName("/d".into())]),
            Operation::new(Operator::AddMn, vec![]),
        ]);
        assert_eq!(tc.to_string(), "mkdir /d; add_MN");
    }

    #[test]
    fn every_operator_shape_is_constructible() {
        for op in ALL_OPERATORS {
            let opds: Vec<Operand> = op
                .operand_shape()
                .iter()
                .map(|k| match k {
                    OperandKind::FileName => Operand::FileName("/x".into()),
                    OperandKind::NodeId => Operand::NodeId(1),
                    OperandKind::VolumeId => Operand::VolumeId(1),
                    OperandKind::Size => Operand::Size(1),
                })
                .collect();
            assert!(Operation::new(op, opds).well_formed());
        }
    }
}

#[cfg(test)]
mod json_tests {
    use super::*;

    fn sample() -> TestCase {
        TestCase::new(vec![
            Operation::new(
                Operator::Create,
                vec![
                    Operand::FileName("/a b\"\\\n\u{1}".into()),
                    Operand::Size(u64::MAX),
                ],
            ),
            Operation::new(Operator::AddMn, vec![]),
            Operation::new(
                Operator::ExpandVolume,
                vec![Operand::VolumeId(7), Operand::Size(1 << 40)],
            ),
            Operation::new(Operator::RemoveMn, vec![Operand::NodeId(3)]),
        ])
    }

    #[test]
    fn json_roundtrip_preserves_case() {
        let case = sample();
        let text = case.to_json();
        assert_eq!(TestCase::from_json(&text).unwrap(), case);
    }

    #[test]
    fn json_roundtrip_every_operator() {
        for opt in ALL_OPERATORS {
            let opds: Vec<Operand> = opt
                .operand_shape()
                .iter()
                .map(|k| match k {
                    OperandKind::FileName => Operand::FileName("/x/π".into()),
                    OperandKind::NodeId => Operand::NodeId(9),
                    OperandKind::VolumeId => Operand::VolumeId(2),
                    OperandKind::Size => Operand::Size(0),
                })
                .collect();
            let case = TestCase::new(vec![Operation::new(opt, opds)]);
            assert_eq!(TestCase::from_json(&case.to_json()).unwrap(), case);
        }
    }

    #[test]
    fn json_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"ops\":}",
            "{\"ops\":[}",
            "{\"ops\":[{\"opt\":\"nope\",\"opds\":[]}]}",
            // Shape mismatch: create needs (file, size).
            "{\"ops\":[{\"opt\":\"create\",\"opds\":[{\"size\":1}]}]}",
            "{\"ops\":[]} trailing",
            "{\"ops\":[{\"opt\":\"add_MN\",\"opds\":[{\"weird\":1}]}]}",
        ] {
            assert!(TestCase::from_json(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn json_empty_case() {
        let case = TestCase::default();
        assert_eq!(case.to_json(), "{\"ops\":[]}");
        assert_eq!(TestCase::from_json("{\"ops\":[]}").unwrap(), case);
    }
}
