//! Failure reports and reproduction logs.
//!
//! When the detector confirms an imbalance, Themis records the confirming
//! test case together with the full time-ordered operation log since the
//! last reset — the paper's reproduction log, handed to developers for
//! replay and root-cause analysis.

use crate::detector::ImbalanceKind;
use crate::spec::{Operation, TestCase};
use serde::{Deserialize, Serialize};

/// One operation in the reproduction log, with its execution timestamp.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoggedOp {
    /// Target-side time the operation executed (ms).
    pub time_ms: u64,
    /// The operation.
    pub op: Operation,
    /// Whether the DFS accepted it.
    pub ok: bool,
}

/// A confirmed imbalance failure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConfirmedFailure {
    /// Which anomaly detector confirmed it.
    pub kind: ImbalanceKind,
    /// The post-double-check max-over-mean ratio (or crashed-node count).
    pub ratio: f64,
    /// Target-side time of confirmation (ms).
    pub time_ms: u64,
    /// The test case whose execution triggered the candidate.
    pub case: TestCase,
    /// Every operation executed since the last reset, in order.
    pub repro_log: Vec<LoggedOp>,
}

impl ConfirmedFailure {
    /// Renders the reproduction log as replayable text (one operation per
    /// line, timestamped), the artifact the paper ships to maintainers.
    pub fn render_repro_log(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# imbalance failure: {} (ratio {:.3}) at {} ms\n",
            self.kind, self.ratio, self.time_ms
        ));
        out.push_str(&format!("# confirming case: {}\n", self.case));
        for entry in &self.repro_log {
            let status = if entry.ok { "ok" } else { "ERR" };
            out.push_str(&format!("{:>10}ms  [{status}]  {}\n", entry.time_ms, entry.op));
        }
        out
    }
}

/// Deduplicates confirmations with the same kind whose reproduction logs
/// end in the same final case, keeping the one with the *shorter* log
/// (the paper keeps the shorter reproduction when two failures share a
/// root cause).
pub fn dedup_by_kind_and_case(mut failures: Vec<ConfirmedFailure>) -> Vec<ConfirmedFailure> {
    failures.sort_by_key(|f| f.repro_log.len());
    let mut kept: Vec<ConfirmedFailure> = Vec::new();
    for f in failures {
        let dup = kept.iter().any(|k| k.kind == f.kind && k.case == f.case);
        if !dup {
            kept.push(f);
        }
    }
    kept.sort_by_key(|f| f.time_ms);
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Operand, Operator};

    fn case(tag: u64) -> TestCase {
        TestCase::new(vec![Operation::new(
            Operator::Create,
            vec![Operand::FileName(format!("/x{tag}")), Operand::Size(1)],
        )])
    }

    fn failure(kind: ImbalanceKind, tag: u64, log_len: usize) -> ConfirmedFailure {
        let c = case(tag);
        ConfirmedFailure {
            kind,
            ratio: 2.0,
            time_ms: tag,
            repro_log: (0..log_len)
                .map(|i| LoggedOp { time_ms: i as u64, op: c.ops[0].clone(), ok: true })
                .collect(),
            case: c,
        }
    }

    #[test]
    fn render_contains_case_and_ops() {
        let f = failure(ImbalanceKind::Storage, 1, 3);
        let text = f.render_repro_log();
        assert!(text.contains("storage"));
        assert!(text.contains("create /x1 1B"));
        assert_eq!(text.lines().count(), 5);
    }

    #[test]
    fn dedup_keeps_shorter_log() {
        let long = failure(ImbalanceKind::Storage, 1, 10);
        let short = failure(ImbalanceKind::Storage, 1, 2);
        let kept = dedup_by_kind_and_case(vec![long, short]);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].repro_log.len(), 2);
    }

    #[test]
    fn dedup_keeps_distinct_kinds_and_cases() {
        let a = failure(ImbalanceKind::Storage, 1, 2);
        let b = failure(ImbalanceKind::Cpu, 1, 2);
        let c = failure(ImbalanceKind::Storage, 2, 2);
        assert_eq!(dedup_by_kind_and_case(vec![a, b, c]).len(), 3);
    }

    #[test]
    fn failed_ops_render_with_err_marker() {
        let mut f = failure(ImbalanceKind::Network, 1, 1);
        f.repro_log[0].ok = false;
        assert!(f.render_repro_log().contains("[ERR]"));
    }
}
