//! Failure reports and reproduction logs.
//!
//! When the detector confirms an imbalance, Themis records the confirming
//! test case together with the full time-ordered operation log since the
//! last reset — the paper's reproduction log, handed to developers for
//! replay and root-cause analysis.

use crate::detector::ImbalanceKind;
use crate::spec::{Operation, TestCase};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::Arc;

/// One operation in the reproduction log, with its execution timestamp.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoggedOp {
    /// Target-side time the operation executed (ms).
    pub time_ms: u64,
    /// The operation.
    pub op: Operation,
    /// Whether the DFS accepted it.
    pub ok: bool,
}

/// A bounded, in-order log of the operations executed since the last DFS
/// reset.
///
/// The campaign loop appends one entry per executed operation; once the
/// log reaches its window it drops the oldest entries, so a long
/// failure-free stretch costs constant memory instead of growing without
/// bound. [`ReproLog::snapshot`] produces the shareable
/// `Arc<Vec<LoggedOp>>` attached to confirmed failures — when one
/// iteration confirms several failures they all share a single snapshot
/// instead of each cloning the full log.
#[derive(Debug, Clone)]
pub struct ReproLog {
    window: usize,
    buf: VecDeque<LoggedOp>,
}

impl ReproLog {
    /// Creates an empty log retaining at most `window` entries (a zero
    /// window is treated as 1 so confirmations always carry context).
    pub fn new(window: usize) -> Self {
        let window = window.max(1);
        ReproLog {
            window,
            buf: VecDeque::with_capacity(window.min(4096)),
        }
    }

    /// Appends an entry, evicting the oldest if the window is full.
    pub fn push(&mut self, entry: LoggedOp) {
        if self.buf.len() == self.window {
            self.buf.pop_front();
        }
        self.buf.push_back(entry);
    }

    /// Drops every entry (on DFS reset).
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Retained entries.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// An immutable, shareable copy of the retained entries in execution
    /// order.
    pub fn snapshot(&self) -> Arc<Vec<LoggedOp>> {
        Arc::new(self.buf.iter().cloned().collect())
    }
}

/// A confirmed imbalance failure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfirmedFailure {
    /// Which anomaly detector confirmed it.
    pub kind: ImbalanceKind,
    /// The post-double-check max-over-mean ratio (or crashed-node count).
    pub ratio: f64,
    /// Target-side time of confirmation (ms).
    pub time_ms: u64,
    /// The test case whose execution triggered the candidate.
    pub case: TestCase,
    /// The operations executed since the last reset, in order, bounded by
    /// [`crate::CampaignConfig::repro_window`]. Failures confirmed in the
    /// same iteration share one snapshot.
    pub repro_log: Arc<Vec<LoggedOp>>,
}

impl ConfirmedFailure {
    /// Renders the reproduction log as replayable text (one operation per
    /// line, timestamped), the artifact the paper ships to maintainers.
    pub fn render_repro_log(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# imbalance failure: {} (ratio {:.3}) at {} ms\n",
            self.kind, self.ratio, self.time_ms
        ));
        out.push_str(&format!("# confirming case: {}\n", self.case));
        for entry in self.repro_log.iter() {
            let status = if entry.ok { "ok" } else { "ERR" };
            out.push_str(&format!(
                "{:>10}ms  [{status}]  {}\n",
                entry.time_ms, entry.op
            ));
        }
        out
    }
}

/// Deduplicates confirmations with the same kind whose reproduction logs
/// end in the same final case, keeping the one with the *shorter* log
/// (the paper keeps the shorter reproduction when two failures share a
/// root cause).
pub fn dedup_by_kind_and_case(mut failures: Vec<ConfirmedFailure>) -> Vec<ConfirmedFailure> {
    failures.sort_by_key(|f| f.repro_log.len());
    let mut kept: Vec<ConfirmedFailure> = Vec::new();
    for f in failures {
        let dup = kept.iter().any(|k| k.kind == f.kind && k.case == f.case);
        if !dup {
            kept.push(f);
        }
    }
    kept.sort_by_key(|f| f.time_ms);
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Operand, Operator};

    fn case(tag: u64) -> TestCase {
        TestCase::new(vec![Operation::new(
            Operator::Create,
            vec![Operand::FileName(format!("/x{tag}")), Operand::Size(1)],
        )])
    }

    fn failure(kind: ImbalanceKind, tag: u64, log_len: usize) -> ConfirmedFailure {
        let c = case(tag);
        ConfirmedFailure {
            kind,
            ratio: 2.0,
            time_ms: tag,
            repro_log: Arc::new(
                (0..log_len)
                    .map(|i| LoggedOp {
                        time_ms: i as u64,
                        op: c.ops[0].clone(),
                        ok: true,
                    })
                    .collect(),
            ),
            case: c,
        }
    }

    #[test]
    fn render_contains_case_and_ops() {
        let f = failure(ImbalanceKind::Storage, 1, 3);
        let text = f.render_repro_log();
        assert!(text.contains("storage"));
        assert!(text.contains("create /x1 1B"));
        assert_eq!(text.lines().count(), 5);
    }

    #[test]
    fn dedup_keeps_shorter_log() {
        let long = failure(ImbalanceKind::Storage, 1, 10);
        let short = failure(ImbalanceKind::Storage, 1, 2);
        let kept = dedup_by_kind_and_case(vec![long, short]);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].repro_log.len(), 2);
    }

    #[test]
    fn dedup_keeps_distinct_kinds_and_cases() {
        let a = failure(ImbalanceKind::Storage, 1, 2);
        let b = failure(ImbalanceKind::Cpu, 1, 2);
        let c = failure(ImbalanceKind::Storage, 2, 2);
        assert_eq!(dedup_by_kind_and_case(vec![a, b, c]).len(), 3);
    }

    #[test]
    fn failed_ops_render_with_err_marker() {
        let mut f = failure(ImbalanceKind::Network, 1, 1);
        Arc::make_mut(&mut f.repro_log)[0].ok = false;
        assert!(f.render_repro_log().contains("[ERR]"));
    }

    #[test]
    fn repro_log_ring_keeps_only_the_window_tail() {
        let c = case(0);
        let mut log = ReproLog::new(3);
        assert!(log.is_empty());
        for i in 0..5u64 {
            log.push(LoggedOp {
                time_ms: i,
                op: c.ops[0].clone(),
                ok: true,
            });
        }
        assert_eq!(log.len(), 3);
        let snap = log.snapshot();
        let times: Vec<u64> = snap.iter().map(|e| e.time_ms).collect();
        assert_eq!(
            times,
            vec![2, 3, 4],
            "ring must keep the newest entries in order"
        );
        log.clear();
        assert!(log.is_empty());
        assert!(log.snapshot().is_empty());
    }
}
