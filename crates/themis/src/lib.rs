//! # Themis — load variance-guided fuzzing for DFS imbalance failures
//!
//! A reproduction of *"Themis: Finding Imbalance Failures in Distributed
//! File Systems via a Load Variance Model"* (EuroSys 2025). Themis tests a
//! distributed file system for **imbalance failures**: errors in its load
//! balancing mechanism that drive the system into a persistently imbalanced
//! state it cannot recover from.
//!
//! The framework has three parts (Figure 10 of the paper):
//!
//! 1. a **Test Case Generator** ([`spec`], [`model`], [`gen`], [`mutate`],
//!    [`seedpool`], [`strategies`]) that models client requests and system
//!    configuration changes as one operation sequence and explores it with
//!    load variance-guided fuzzing;
//! 2. an **Imbalance Detector** ([`lvm`], [`detector`]) monitoring per-node
//!    computation/network/storage load, thresholding max-over-mean ratios,
//!    and double-checking candidates through the target's rebalance API;
//! 3. an **Interaction Adaptor** interface ([`adaptor`]) — the only part
//!    that is target-specific (implementations live in the `adaptors`
//!    crate).
//!
//! [`campaign::run_campaign`] ties them into the full testing loop.
//!
//! ```
//! use themis::spec::{Operand, Operation, Operator, TestCase};
//!
//! // A deep triggering sequence mixing both input spaces:
//! let case = TestCase::new(vec![
//!     Operation::new(Operator::Create, vec![Operand::FileName("/data".into()), Operand::Size(1 << 20)]),
//!     Operation::new(Operator::AddStorage, vec![Operand::Size(1 << 30)]),
//!     Operation::new(Operator::Delete, vec![Operand::FileName("/data".into())]),
//! ]);
//! assert!(case.mixes_input_spaces());
//! ```

pub mod adaptive;
pub mod adaptor;
pub mod campaign;
pub mod crash;
pub mod detector;
pub mod gen;
pub mod lvm;
pub mod model;
pub mod mutate;
pub mod report;
pub mod seedpool;
pub mod spec;
pub mod strategies;

pub use adaptive::{AdaptiveConfig, AdaptiveThreshold};
pub use adaptor::{
    AdaptorError, CrashExplorable, CrashOracleViolation, DfsAdaptor, LoadReport, NodeInventory,
    NodeLoad, Role, SnapshotCapable,
};
pub use campaign::{
    run_campaign, run_campaign_with_mode, CampaignConfig, CampaignObserver, CampaignResult,
    CoveragePoint, ExecutionMode, NullObserver,
};
pub use crash::{
    explore_bounded, explore_random, run_crash_campaign, CrashCampaignResult,
    CrashExplorationReport, CrashExplorerConfig, CrashFinding,
};
pub use detector::{Candidate, Detector, DetectorConfig, ImbalanceKind};
pub use gen::{OpDraw, MAX_SEQ_LEN};
pub use lvm::{VarianceScore, VarianceWeights};
pub use model::InputModel;
pub use report::{ConfirmedFailure, LoggedOp};
pub use seedpool::{PrefixChain, SeedPool};
pub use spec::{Operand, OperandKind, Operation, Operator, TestCase};
pub use strategies::{
    by_name, Alternate, Concurrent, ExecFeedback, FixConf, FixReq, GenCtx, Strategy, ThemisMinus,
    ThemisStrategy, COMPARISON_STRATEGIES,
};
