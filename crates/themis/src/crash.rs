//! Bounded crash-point exploration of the target's migration pipeline.
//!
//! Themis's environment faults fire at scheduled virtual-clock times, but
//! imbalance *repair* — plan → copy → commit → cleanup — is exactly where
//! crash-consistency bugs hide, and a randomly timed crash rarely lands
//! inside those short windows. Following B3's bounded black-box crash
//! testing, [`explore_bounded`] instead enumerates every deterministic
//! crash point the target passes within one rebalance window (via
//! [`CrashExplorable`]), then uses the fork/restore engine
//! ([`SnapshotCapable`]) to replay the window once per point: fork, crash
//! the machine applying that micro-step, restart it, run recovery, and ask
//! the target's crash-consistency oracle whether every
//! namespace/replica/accounting invariant still holds.
//!
//! [`explore_random`] is the control arm: the same fork budget spent on
//! randomly timed crashes over an oversampled horizon (modelling how a
//! scheduled fault usually misses the micro-windows). The campaign report
//! carries both, so a run demonstrates not just *what* bounded exploration
//! found but what random injection would have missed.
//!
//! [`SnapshotCapable`]: crate::adaptor::SnapshotCapable

use crate::adaptor::{CrashOracleViolation, DfsAdaptor};
use crate::spec::{Operand, Operation, Operator};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

pub use crate::adaptor::CrashExplorable;

/// Tuning for one crash-exploration campaign.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashExplorerConfig {
    /// Upper bound on crash points explored (the "bounded" in bounded
    /// exploration): points past the bound are enumerated but not crashed.
    pub bound: u64,
    /// Driving quanta per window replay (each quantum is the target's
    /// [`CrashExplorable::window_step_ms`]).
    pub window_ticks: u32,
    /// Priming workload: files created before the storage expansion.
    pub prime_files: u32,
    /// Priming workload: size of each created file in bytes.
    pub prime_file_bytes: u64,
    /// Priming workload: capacity of the storage node added to queue a
    /// rebalance (and shift DHT hash ranges, so linkfile transitions
    /// occur).
    pub prime_storage_bytes: u64,
    /// Seed for the random-time baseline arm.
    pub seed: u64,
    /// The random baseline draws crash indices from `points × oversample`:
    /// the factor models wall-clock time that is *not* inside any
    /// migration micro-window, which randomly timed faults mostly hit.
    pub oversample: u64,
}

impl Default for CrashExplorerConfig {
    fn default() -> Self {
        CrashExplorerConfig {
            bound: 96,
            window_ticks: 60,
            prime_files: 30,
            prime_file_bytes: 16 << 20,
            prime_storage_bytes: 4 << 30,
            seed: 0x7EA1_5EED,
            oversample: 32,
        }
    }
}

/// One explored crash point whose oracle check failed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashFinding {
    /// 0-based crash-point index within the window.
    pub point: u64,
    /// Micro-step label of the interrupted move.
    pub label: String,
    /// The invariant violation the oracle reported after recovery.
    pub violation: CrashOracleViolation,
}

/// Outcome of one exploration arm (bounded or random baseline).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashExplorationReport {
    /// Crash points the enumeration pass counted in the window.
    pub points_enumerated: u64,
    /// Crash-and-recover cycles actually executed.
    pub explored: u64,
    /// Fork/restore cycles spent (enumeration included) — the execution
    /// budget both arms are compared on.
    pub forks: u64,
    /// Explored points whose recovery passed every invariant.
    pub clean: u64,
    /// Violations, in crash-point order.
    pub findings: Vec<CrashFinding>,
    /// Violations per stable class name.
    pub by_class: BTreeMap<String, u64>,
}

impl CrashExplorationReport {
    /// Whether a violation of `class` was found.
    pub fn found(&self, class: &str) -> bool {
        self.by_class.contains_key(class)
    }

    fn record(&mut self, point: u64, label: String, violation: Option<CrashOracleViolation>) {
        self.explored += 1;
        match violation {
            Some(v) => {
                *self.by_class.entry(v.class.clone()).or_insert(0) += 1;
                self.findings.push(CrashFinding {
                    point,
                    label,
                    violation: v,
                });
            }
            None => self.clean += 1,
        }
    }
}

/// A full crash-campaign result: the bounded arm plus the equal-budget
/// random baseline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashCampaignResult {
    /// Target name as reported by the adaptor.
    pub target: String,
    /// The bounded crash-point exploration arm.
    pub bounded: CrashExplorationReport,
    /// The random-time control arm, same fork budget.
    pub baseline: CrashExplorationReport,
}

/// Standard splitmix64 step — the deterministic generator behind the
/// random baseline's crash-index draws.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Starts a rebalance and drives a fixed window of fixed-size quanta —
/// identical driving on every replay, so crash-point indices recorded
/// while enumerating address the same micro-steps when crashed. Stops
/// early once an armed crash fires (time is frozen for the dead machine).
fn drive_window(a: &mut dyn DfsAdaptor, step_ms: u64, ticks: u32) {
    a.rebalance();
    for _ in 0..ticks {
        if a.crash_points().is_some_and(|c| c.crash_fired()) {
            return;
        }
        a.wait(step_ms);
    }
}

/// Forks at the current state, crashes the target at crash point `k`
/// within one replayed window, recovers, runs the oracle, and restores.
/// Returns `None` if the armed crash never fired (the index lies beyond
/// the window — a wasted run, which is the point of the random baseline).
fn crash_once(
    a: &mut dyn DfsAdaptor,
    mark: u64,
    step_ms: u64,
    ticks: u32,
    k: u64,
) -> Result<Option<(String, Option<CrashOracleViolation>)>, String> {
    a.crash_points()
        .ok_or("target does not expose crash points")?
        .arm_crash_at(k);
    drive_window(a, step_ms, ticks);
    let cp = a.crash_points().expect("capability checked above");
    let outcome = match cp.recover() {
        Some(label) => {
            let violation = cp.check_invariants();
            Some((label, violation))
        }
        None => None,
    };
    a.crash_points().expect("capability checked above").disarm();
    if !a
        .snapshots()
        .ok_or("crash exploration requires fork/restore")?
        .restore(mark)
    {
        return Err("window fork mark died mid-exploration".into());
    }
    Ok(outcome)
}

/// Bounded exploration: enumerate the window's crash points, then crash
/// at each of the first `cfg.bound` in turn, recover, and oracle-check.
///
/// The target must expose both [`CrashExplorable`] and fork/restore;
/// errors otherwise. The target's runtime audit is switched on for the
/// duration — exploration *wants* the release-mode oracle on every
/// restore.
pub fn explore_bounded(
    a: &mut dyn DfsAdaptor,
    cfg: &CrashExplorerConfig,
) -> Result<CrashExplorationReport, String> {
    let cp = a
        .crash_points()
        .ok_or("target does not expose crash points")?;
    let step_ms = cp.window_step_ms();
    cp.set_runtime_audit(true);
    let mark = a
        .snapshots()
        .ok_or("crash exploration requires fork/restore")?
        .snapshot();

    // Pass 1: enumerate.
    a.crash_points()
        .expect("capability checked above")
        .arm_enumeration();
    drive_window(a, step_ms, cfg.window_ticks);
    let labels = a.crash_points().expect("capability checked above").disarm();
    if !a
        .snapshots()
        .expect("capability checked above")
        .restore(mark)
    {
        return Err("window fork mark died after enumeration".into());
    }

    // Pass 2: one crash-and-recover replay per point, up to the bound.
    let mut report = CrashExplorationReport {
        points_enumerated: labels.len() as u64,
        forks: 1, // the enumeration replay
        ..CrashExplorationReport::default()
    };
    let explore = (labels.len() as u64).min(cfg.bound);
    for k in 0..explore {
        report.forks += 1;
        match crash_once(a, mark, step_ms, cfg.window_ticks, k)? {
            Some((label, violation)) => report.record(k, label, violation),
            None => {
                return Err(format!(
                    "enumerated crash point {k} did not fire on replay — \
                     the target's crash points are not deterministic"
                ))
            }
        }
    }
    a.snapshots()
        .expect("capability checked above")
        .release(mark);
    Ok(report)
}

/// Random-time control arm: the same fork budget as a bounded run over
/// `points` enumerated crash points, but each replay crashes at an index
/// drawn uniformly from `points × cfg.oversample` — most draws land in
/// "time" outside any migration micro-window and fire nothing, exactly
/// how scheduled fault injection behaves.
pub fn explore_random(
    a: &mut dyn DfsAdaptor,
    cfg: &CrashExplorerConfig,
    points: u64,
    budget: u64,
) -> Result<CrashExplorationReport, String> {
    let cp = a
        .crash_points()
        .ok_or("target does not expose crash points")?;
    let step_ms = cp.window_step_ms();
    cp.set_runtime_audit(true);
    let mark = a
        .snapshots()
        .ok_or("crash exploration requires fork/restore")?
        .snapshot();
    let horizon = points.saturating_mul(cfg.oversample).max(1);
    let mut report = CrashExplorationReport {
        points_enumerated: points,
        ..CrashExplorationReport::default()
    };
    for i in 0..budget {
        let k = splitmix64(cfg.seed ^ i) % horizon;
        report.forks += 1;
        if let Some((label, violation)) = crash_once(a, mark, step_ms, cfg.window_ticks, k)? {
            report.record(k, label, violation);
        }
    }
    a.snapshots()
        .expect("capability checked above")
        .release(mark);
    Ok(report)
}

/// The crash campaign mode: primes the target with a skewed create burst
/// plus a storage expansion (queueing a real rebalance window and
/// shifting hash ranges so linkfile transitions occur), then runs the
/// bounded arm and the equal-budget random baseline from the same state.
pub fn run_crash_campaign(
    a: &mut dyn DfsAdaptor,
    cfg: &CrashExplorerConfig,
) -> Result<CrashCampaignResult, String> {
    for i in 0..cfg.prime_files {
        let op = Operation::new(
            Operator::Create,
            vec![
                Operand::FileName(format!("/cf{i}")),
                Operand::Size(cfg.prime_file_bytes),
            ],
        );
        a.send(&op).map_err(|e| format!("priming create: {e}"))?;
    }
    let grow = Operation::new(
        Operator::AddStorage,
        vec![Operand::Size(cfg.prime_storage_bytes)],
    );
    a.send(&grow)
        .map_err(|e| format!("priming expansion: {e}"))?;

    let bounded = explore_bounded(a, cfg)?;
    let baseline = explore_random(a, cfg, bounded.points_enumerated, bounded.forks)?;
    Ok(CrashCampaignResult {
        target: a.name(),
        bounded,
        baseline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptor::{AdaptorError, LoadReport, NodeInventory, SnapshotCapable};

    /// A toy crash-explorable target: every window passes a fixed label
    /// sequence, one point per wait() quantum, and recovery from some
    /// steps leaves a seeded violation.
    struct FakeTarget {
        labels: Vec<&'static str>,
        /// (tick cursor, armed plan, fired label) — the forkable state.
        tick: u64,
        plan: Option<FakePlan>,
        fired: Option<usize>,
        recovered: Option<usize>,
        enumerated: Vec<String>,
        snaps: Vec<(u64, Option<usize>, Option<usize>)>,
        audit_on: bool,
    }

    #[derive(Clone, Copy)]
    enum FakePlan {
        Enumerate,
        At(u64),
    }

    impl FakeTarget {
        fn new() -> Self {
            FakeTarget {
                labels: vec![
                    "plan f1 0->9",
                    "copy 1/2 f1 0->9",
                    "copy 2/2 f1 0->9",
                    "commit-swap f1 0->9",
                    "commit-account f1 0->9",
                    "cleanup f1 0->9",
                ],
                tick: 0,
                plan: None,
                fired: None,
                recovered: None,
                enumerated: Vec::new(),
                snaps: Vec::new(),
                audit_on: false,
            }
        }

        fn class_for(label: &str) -> Option<&'static str> {
            if label.starts_with("copy") {
                Some("orphan_replica")
            } else if label.starts_with("commit-swap") {
                Some("double_counted_blocks")
            } else if label.starts_with("commit-account") {
                Some("lost_linkfile")
            } else {
                None
            }
        }
    }

    impl DfsAdaptor for FakeTarget {
        fn name(&self) -> String {
            "fake-target".into()
        }
        fn send(&mut self, _op: &Operation) -> Result<(), AdaptorError> {
            Ok(())
        }
        fn load_report(&mut self) -> LoadReport {
            LoadReport::default()
        }
        fn rebalance(&mut self) {}
        fn rebalance_done(&mut self) -> bool {
            true
        }
        fn wait(&mut self, _ms: u64) {
            if self.fired.is_some() {
                return;
            }
            let idx = self.tick as usize;
            self.tick += 1;
            if idx >= self.labels.len() {
                return;
            }
            match self.plan {
                Some(FakePlan::Enumerate) => self.enumerated.push(self.labels[idx].to_string()),
                Some(FakePlan::At(k)) if k == idx as u64 => self.fired = Some(idx),
                _ => {}
            }
        }
        fn reset(&mut self) {
            self.tick = 0;
            self.snaps.clear();
        }
        fn coverage(&mut self) -> u64 {
            0
        }
        fn now_ms(&mut self) -> u64 {
            self.tick
        }
        fn inventory(&mut self) -> NodeInventory {
            NodeInventory::default()
        }
        fn snapshots(&mut self) -> Option<&mut dyn SnapshotCapable> {
            Some(self)
        }
        fn crash_points(&mut self) -> Option<&mut dyn CrashExplorable> {
            Some(self)
        }
    }

    impl SnapshotCapable for FakeTarget {
        fn snapshot(&mut self) -> u64 {
            self.snaps.push((self.tick, self.fired, self.recovered));
            self.snaps.len() as u64 - 1
        }
        fn restore(&mut self, id: u64) -> bool {
            let Some(&(tick, fired, recovered)) = self.snaps.get(id as usize) else {
                return false;
            };
            self.tick = tick;
            self.fired = fired;
            self.recovered = recovered;
            self.snaps.truncate(id as usize + 1);
            true
        }
        fn release(&mut self, _id: u64) {}
    }

    impl CrashExplorable for FakeTarget {
        fn arm_enumeration(&mut self) {
            self.plan = Some(FakePlan::Enumerate);
            self.enumerated.clear();
        }
        fn arm_crash_at(&mut self, k: u64) {
            self.plan = Some(FakePlan::At(k));
            self.fired = None;
            self.recovered = None;
        }
        fn disarm(&mut self) -> Vec<String> {
            self.plan = None;
            std::mem::take(&mut self.enumerated)
        }
        fn crash_fired(&mut self) -> bool {
            self.fired.is_some()
        }
        fn recover(&mut self) -> Option<String> {
            let idx = self.fired.take()?;
            self.recovered = Some(idx);
            Some(self.labels[idx].to_string())
        }
        fn check_invariants(&mut self) -> Option<CrashOracleViolation> {
            let idx = self.recovered?;
            let label = self.labels[idx];
            Self::class_for(label).map(|class| CrashOracleViolation {
                class: class.into(),
                detail: format!("seeded at '{label}'"),
            })
        }
        fn window_step_ms(&self) -> u64 {
            1_000
        }
        fn set_runtime_audit(&mut self, on: bool) {
            self.audit_on = on;
        }
    }

    #[test]
    fn bounded_exploration_visits_every_point_and_classifies() {
        let mut t = FakeTarget::new();
        let cfg = CrashExplorerConfig {
            window_ticks: 10,
            ..CrashExplorerConfig::default()
        };
        let report = explore_bounded(&mut t, &cfg).unwrap();
        assert_eq!(report.points_enumerated, 6);
        assert_eq!(report.explored, 6);
        assert_eq!(report.forks, 7, "enumeration + one replay per point");
        assert_eq!(report.clean, 2, "plan and cleanup recover clean");
        assert_eq!(report.by_class.get("orphan_replica"), Some(&2));
        assert_eq!(report.by_class.get("double_counted_blocks"), Some(&1));
        assert_eq!(report.by_class.get("lost_linkfile"), Some(&1));
        assert!(t.audit_on, "exploration opts into the runtime audit");
    }

    #[test]
    fn the_bound_caps_explored_points() {
        let mut t = FakeTarget::new();
        let cfg = CrashExplorerConfig {
            bound: 2,
            window_ticks: 10,
            ..CrashExplorerConfig::default()
        };
        let report = explore_bounded(&mut t, &cfg).unwrap();
        assert_eq!(report.points_enumerated, 6);
        assert_eq!(report.explored, 2);
    }

    #[test]
    fn random_baseline_with_the_same_budget_misses_rare_windows() {
        let mut t = FakeTarget::new();
        let cfg = CrashExplorerConfig {
            window_ticks: 10,
            ..CrashExplorerConfig::default()
        };
        let bounded = explore_bounded(&mut t, &cfg).unwrap();
        let baseline =
            explore_random(&mut t, &cfg, bounded.points_enumerated, bounded.forks).unwrap();
        assert_eq!(baseline.forks, bounded.forks, "equal execution budget");
        let missed: Vec<&String> = bounded
            .by_class
            .keys()
            .filter(|c| !baseline.found(c))
            .collect();
        assert!(
            !missed.is_empty(),
            "oversampled random draws must miss some class; baseline found {:?}",
            baseline.by_class
        );
    }

    #[test]
    fn targets_without_the_capability_are_rejected() {
        struct Plain;
        impl DfsAdaptor for Plain {
            fn name(&self) -> String {
                "plain".into()
            }
            fn send(&mut self, _op: &Operation) -> Result<(), AdaptorError> {
                Ok(())
            }
            fn load_report(&mut self) -> LoadReport {
                LoadReport::default()
            }
            fn rebalance(&mut self) {}
            fn rebalance_done(&mut self) -> bool {
                true
            }
            fn wait(&mut self, _ms: u64) {}
            fn reset(&mut self) {}
            fn coverage(&mut self) -> u64 {
                0
            }
            fn now_ms(&mut self) -> u64 {
                0
            }
            fn inventory(&mut self) -> NodeInventory {
                NodeInventory::default()
            }
        }
        let cfg = CrashExplorerConfig::default();
        assert!(explore_bounded(&mut Plain, &cfg).is_err());
        assert!(explore_random(&mut Plain, &cfg, 4, 4).is_err());
    }

    #[test]
    fn full_campaign_reports_both_arms() {
        let mut t = FakeTarget::new();
        let cfg = CrashExplorerConfig {
            window_ticks: 10,
            prime_files: 2,
            ..CrashExplorerConfig::default()
        };
        let result = run_crash_campaign(&mut t, &cfg).unwrap();
        assert_eq!(result.target, "fake-target");
        assert_eq!(result.bounded.by_class.len(), 3);
        assert!(result.baseline.forks == result.bounded.forks);
    }
}
