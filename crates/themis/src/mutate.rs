//! OpSeq mutation (Section 4.2, *OpSeq Mutation*).
//!
//! Like AFL, Themis mutates a parent sequence at a random set of positions
//! using three operators: *replace* (new operator at the position), *delete*
//! (drop the position) and *insert* (new operation inserted). After
//! mutation every operation is scanned for references to files or nodes
//! that no longer exist and repaired against the input model.

use crate::gen;
use crate::model::InputModel;
use crate::spec::TestCase;
use rand::rngs::StdRng;
use rand::RngExt;

/// The three mutation operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationKind {
    /// Replace the operation at the position with a freshly generated one.
    Replace,
    /// Delete the operation at the position.
    Delete,
    /// Insert a freshly generated operation at the position.
    Insert,
}

/// Mutates `parent` into a new test case, drawing replacement/insertion
/// operators from the full grammar.
///
/// A random set of positions `P` (|P| ≤ len) is selected; each position
/// receives a uniformly chosen mutation. The result is clamped to
/// `1..=max_len` operations and every operation is reference-repaired.
pub fn mutate(
    parent: &TestCase,
    model: &mut InputModel,
    rng: &mut StdRng,
    max_len: usize,
) -> TestCase {
    mutate_with(parent, model, rng, max_len, gen::OpDraw::Any)
}

/// [`mutate`] restricted to a grammar subset (for fix-one-input baselines).
pub fn mutate_with(
    parent: &TestCase,
    model: &mut InputModel,
    rng: &mut StdRng,
    max_len: usize,
    draw: gen::OpDraw,
) -> TestCase {
    let mut ops = parent.ops.clone();
    if ops.is_empty() {
        return gen::random_case(model, rng, max_len);
    }
    // Small steps: mutate one or two positions. Load variance accumulates
    // through chains of lightly varied repetitions of a good sequence
    // (Finding 5's "gradual variation"); heavy mutation would destroy the
    // structure that made the parent interesting.
    let k = rng.random_range(1..=2usize.min(ops.len()));
    // Work on positions in descending order so indices stay valid across
    // deletions/insertions.
    let mut positions: Vec<usize> = (0..ops.len()).collect();
    // Partial Fisher-Yates: take k distinct positions.
    for i in 0..k {
        let j = rng.random_range(i..positions.len());
        positions.swap(i, j);
    }
    let mut chosen: Vec<usize> = positions[..k].to_vec();
    chosen.sort_unstable_by(|a, b| b.cmp(a));

    for pos in chosen {
        let kind = match rng.random_range(0..3u32) {
            0 => MutationKind::Replace,
            1 => MutationKind::Delete,
            _ => MutationKind::Insert,
        };
        match kind {
            MutationKind::Replace => {
                ops[pos] = gen::operation_for(draw, model, rng);
            }
            MutationKind::Delete => {
                if ops.len() > 1 {
                    ops.remove(pos);
                }
            }
            MutationKind::Insert => {
                if ops.len() < max_len {
                    ops.insert(pos, gen::operation_for(draw, model, rng));
                }
            }
        }
    }

    // Operand refresh: Themis randomly regenerates FileName/NodeId/Size
    // operands so repeated executions do not concentrate on the same keys
    // (Section 7: this is what prevents the all-clients-read-one-file
    // false-positive scenario).
    for op in &mut ops {
        if rng.random_bool(0.25) {
            *op = model.instantiate(op.opt, rng);
        }
    }
    // Post-mutation scan: repair operations referencing dead identifiers.
    for op in &mut ops {
        model.repair(op, rng);
    }
    TestCase::new(ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptor::NodeInventory;
    use crate::gen::MAX_SEQ_LEN;
    use rand::SeedableRng;

    fn setup() -> (InputModel, StdRng) {
        let mut m = InputModel::new();
        m.sync(&NodeInventory {
            mgmt: vec![0],
            storage: vec![1, 2],
            volumes: vec![5, 6],
            free_space: 1 << 30,
            files: vec!["/a".into(), "/b".into()],
            dirs: vec!["/d".into()],
        });
        (m, StdRng::seed_from_u64(3))
    }

    #[test]
    fn mutation_preserves_well_formedness_and_bounds() {
        let (mut m, mut r) = setup();
        let mut case = gen::random_case(&mut m, &mut r, MAX_SEQ_LEN);
        for _ in 0..300 {
            case = mutate(&case, &mut m, &mut r, MAX_SEQ_LEN);
            assert!(case.well_formed());
            assert!(!case.is_empty());
            assert!(case.len() <= MAX_SEQ_LEN);
        }
    }

    #[test]
    fn mutation_eventually_changes_the_case() {
        let (mut m, mut r) = setup();
        let case = gen::random_case(&mut m, &mut r, MAX_SEQ_LEN);
        let changed = (0..50).any(|_| mutate(&case, &mut m, &mut r, MAX_SEQ_LEN) != case);
        assert!(changed, "50 mutations should not all be identity");
    }

    #[test]
    fn mutation_repairs_dangling_references() {
        let (mut m, mut r) = setup();
        // Build a case referencing a file, then remove it from the model.
        let case = TestCase::new(vec![crate::spec::Operation::new(
            crate::spec::Operator::Delete,
            vec![crate::spec::Operand::FileName("/a".into())],
        )]);
        m.files.retain(|f| f != "/a");
        for _ in 0..30 {
            let child = mutate(&case, &mut m, &mut r, MAX_SEQ_LEN);
            for op in &child.ops {
                assert!(
                    m.references_valid(op),
                    "mutated op references dead id: {op}"
                );
            }
        }
    }

    #[test]
    fn empty_parent_degenerates_to_random_case() {
        let (mut m, mut r) = setup();
        let child = mutate(&TestCase::default(), &mut m, &mut r, MAX_SEQ_LEN);
        assert!(!child.is_empty());
        assert!(child.well_formed());
    }

    #[test]
    fn constrained_mutation_stays_in_subset() {
        let (mut m, mut r) = setup();
        let mut case = gen::request_only_case(&mut m, &mut r, MAX_SEQ_LEN);
        for _ in 0..100 {
            case = mutate_with(&case, &mut m, &mut r, MAX_SEQ_LEN, gen::OpDraw::FileOnly);
            assert!(case.ops.iter().all(|o| o.opt.is_file_op()), "{case}");
        }
        let mut conf = gen::config_only_case(&mut m, &mut r, MAX_SEQ_LEN);
        for _ in 0..100 {
            conf = mutate_with(&conf, &mut m, &mut r, MAX_SEQ_LEN, gen::OpDraw::ConfigOnly);
            assert!(conf.ops.iter().all(|o| o.opt.is_config_op()), "{conf}");
        }
    }

    #[test]
    fn mutation_is_deterministic_per_seed() {
        let (mut m1, mut r1) = setup();
        let (mut m2, mut r2) = setup();
        let p1 = gen::random_case(&mut m1, &mut r1, MAX_SEQ_LEN);
        let p2 = gen::random_case(&mut m2, &mut r2, MAX_SEQ_LEN);
        assert_eq!(
            mutate(&p1, &mut m1, &mut r1, 8),
            mutate(&p2, &mut m2, &mut r2, 8)
        );
    }
}
