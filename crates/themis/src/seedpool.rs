//! The seed pool: interesting test cases kept for mutation (step 3/9 of
//! the workflow in Figure 6).
//!
//! Seeds that produced a new failure or a larger load variance than their
//! parent are prioritized. Selection is biased toward high-variance seeds
//! (a simple power schedule) while keeping some tail diversity.

use crate::spec::TestCase;
use rand::rngs::StdRng;
use rand::RngExt;

/// One pooled seed.
#[derive(Debug, Clone)]
pub struct Seed {
    /// The operation sequence.
    pub case: TestCase,
    /// Guidance score when it was admitted (weighted load variance).
    pub score: f64,
    /// How many times it has been selected for mutation.
    pub picks: u32,
}

/// A bounded, score-ordered seed pool.
#[derive(Debug, Clone)]
pub struct SeedPool {
    seeds: Vec<Seed>,
    cap: usize,
}

impl SeedPool {
    /// Creates a pool holding at most `cap` seeds.
    pub fn new(cap: usize) -> Self {
        SeedPool {
            seeds: Vec::new(),
            cap: cap.max(1),
        }
    }

    /// Number of pooled seeds.
    pub fn len(&self) -> usize {
        self.seeds.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.seeds.is_empty()
    }

    /// Admits a seed, keeping the pool sorted by score (descending) and
    /// bounded by capacity (the weakest seed is evicted).
    pub fn push(&mut self, case: TestCase, score: f64) {
        let pos = self.seeds.partition_point(|s| s.score >= score);
        self.seeds.insert(
            pos,
            Seed {
                case,
                score,
                picks: 0,
            },
        );
        if self.seeds.len() > self.cap {
            self.seeds.truncate(self.cap);
        }
    }

    /// Selects a seed for mutation, biased toward the top of the pool:
    /// with probability 3/4 a uniform draw from the top quarter, otherwise
    /// a uniform draw from the whole pool.
    pub fn pick(&mut self, rng: &mut StdRng) -> Option<&TestCase> {
        if self.seeds.is_empty() {
            return None;
        }
        let idx = if rng.random_bool(0.75) {
            rng.random_range(0..self.seeds.len().div_ceil(4))
        } else {
            rng.random_range(0..self.seeds.len())
        };
        self.seeds[idx].picks += 1;
        Some(&self.seeds[idx].case)
    }

    /// The best score currently pooled (0 when empty).
    pub fn best_score(&self) -> f64 {
        self.seeds.first().map(|s| s.score).unwrap_or(0.0)
    }

    /// Clears the pool (campaign reset).
    pub fn clear(&mut self) {
        self.seeds.clear();
    }

    /// Iterates pooled seeds, best first.
    pub fn iter(&self) -> impl Iterator<Item = &Seed> {
        self.seeds.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Operand, Operation, Operator};
    use rand::SeedableRng;

    fn case(tag: u64) -> TestCase {
        TestCase::new(vec![Operation::new(
            Operator::Create,
            vec![Operand::FileName(format!("/s{tag}")), Operand::Size(tag)],
        )])
    }

    #[test]
    fn pool_orders_by_score() {
        let mut p = SeedPool::new(8);
        p.push(case(1), 0.5);
        p.push(case(2), 2.0);
        p.push(case(3), 1.0);
        let scores: Vec<f64> = p.iter().map(|s| s.score).collect();
        assert_eq!(scores, vec![2.0, 1.0, 0.5]);
        assert_eq!(p.best_score(), 2.0);
    }

    #[test]
    fn pool_evicts_weakest_when_full() {
        let mut p = SeedPool::new(2);
        p.push(case(1), 1.0);
        p.push(case(2), 3.0);
        p.push(case(3), 2.0);
        assert_eq!(p.len(), 2);
        let scores: Vec<f64> = p.iter().map(|s| s.score).collect();
        assert_eq!(scores, vec![3.0, 2.0]);
    }

    #[test]
    fn pick_prefers_high_scores() {
        let mut p = SeedPool::new(16);
        for i in 0..16 {
            p.push(case(i), i as f64);
        }
        let mut rng = StdRng::seed_from_u64(5);
        let mut top_half = 0;
        for _ in 0..400 {
            let c = p.pick(&mut rng).unwrap().clone();
            // The top half holds scores 8..16, i.e. tags 8..16.
            if let Operand::Size(tag) = c.ops[0].opds[1] {
                if tag >= 8 {
                    top_half += 1;
                }
            }
        }
        assert!(
            top_half > 280,
            "expected bias toward top half, got {top_half}/400"
        );
    }

    #[test]
    fn empty_pool_picks_none() {
        let mut p = SeedPool::new(4);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(p.pick(&mut rng).is_none());
        assert_eq!(p.best_score(), 0.0);
    }

    #[test]
    fn clear_empties_pool() {
        let mut p = SeedPool::new(4);
        p.push(case(1), 1.0);
        p.clear();
        assert!(p.is_empty());
    }
}
