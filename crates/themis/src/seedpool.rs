//! The seed pool: interesting test cases kept for mutation (step 3/9 of
//! the workflow in Figure 6), plus the parent-prefix snapshot chain the
//! campaign's fork engine uses to resume mutated children from their
//! deepest cached ancestor state.

use crate::spec::{Operation, TestCase};
use rand::rngs::StdRng;
use rand::RngExt;

/// One pooled seed.
#[derive(Debug, Clone)]
pub struct Seed {
    /// The operation sequence.
    pub case: TestCase,
    /// Guidance score when it was admitted (weighted load variance).
    pub score: f64,
    /// How many times it has been selected for mutation.
    pub picks: u32,
}

/// A bounded, score-ordered seed pool.
#[derive(Debug, Clone)]
pub struct SeedPool {
    seeds: Vec<Seed>,
    cap: usize,
}

impl SeedPool {
    /// Creates a pool holding at most `cap` seeds.
    pub fn new(cap: usize) -> Self {
        SeedPool {
            seeds: Vec::new(),
            cap: cap.max(1),
        }
    }

    /// Number of pooled seeds.
    pub fn len(&self) -> usize {
        self.seeds.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.seeds.is_empty()
    }

    /// Admits a seed, keeping the pool sorted by score (descending) and
    /// bounded by capacity (the weakest seed is evicted).
    pub fn push(&mut self, case: TestCase, score: f64) {
        let pos = self.seeds.partition_point(|s| s.score >= score);
        self.seeds.insert(
            pos,
            Seed {
                case,
                score,
                picks: 0,
            },
        );
        if self.seeds.len() > self.cap {
            self.seeds.truncate(self.cap);
        }
    }

    /// Selects a seed for mutation, biased toward the top of the pool:
    /// with probability 3/4 a uniform draw from the top quarter, otherwise
    /// a uniform draw from the whole pool.
    pub fn pick(&mut self, rng: &mut StdRng) -> Option<&TestCase> {
        if self.seeds.is_empty() {
            return None;
        }
        let idx = if rng.random_bool(0.75) {
            rng.random_range(0..self.seeds.len().div_ceil(4))
        } else {
            rng.random_range(0..self.seeds.len())
        };
        self.seeds[idx].picks += 1;
        Some(&self.seeds[idx].case)
    }

    /// The best score currently pooled (0 when empty).
    pub fn best_score(&self) -> f64 {
        self.seeds.first().map(|s| s.score).unwrap_or(0.0)
    }

    /// Clears the pool (campaign reset).
    pub fn clear(&mut self) {
        self.seeds.clear();
    }

    /// Iterates pooled seeds, best first.
    pub fn iter(&self) -> impl Iterator<Item = &Seed> {
        self.seeds.iter()
    }
}

/// The fork engine's parent-prefix snapshot cache.
///
/// Mark `k` is the target state after the first `k` operations of the
/// previously executed case (`mark(0)` is the clean base state). Because
/// mutation produces children sharing a prefix with their parent, the
/// longest common prefix between the previous and the next case tells how
/// deep the next case can resume without re-executing anything. Cached
/// per-op outcomes (success + raw target time) let the campaign
/// reconstruct the skipped prefix's log entries exactly.
///
/// The chain mirrors the target-side mark stack: truncating here must be
/// paired with restoring the corresponding mark there.
#[derive(Debug, Clone)]
pub struct PrefixChain {
    ops: Vec<Operation>,
    /// Per-prefix-op outcome: (succeeded, raw target time after the op).
    outcomes: Vec<(bool, u64)>,
    /// `marks[k]` = snapshot id for the state after `k` ops; always one
    /// longer than `ops`.
    marks: Vec<u64>,
}

impl PrefixChain {
    /// A chain rooted at the clean-state mark `base`.
    pub fn new(base: u64) -> Self {
        PrefixChain {
            ops: Vec::new(),
            outcomes: Vec::new(),
            marks: vec![base],
        }
    }

    /// Longest shared prefix between the cached lineage and `next`, capped
    /// at the cached depth — the deepest state `next` can resume from.
    pub fn lcp(&self, next: &[Operation]) -> usize {
        self.ops
            .iter()
            .zip(next)
            .take_while(|(a, b)| *a == *b)
            .count()
    }

    /// The mark holding the state after `k` cached ops.
    pub fn mark(&self, k: usize) -> u64 {
        self.marks[k]
    }

    /// Cached outcome of prefix op `i`.
    pub fn outcome(&self, i: usize) -> (bool, u64) {
        self.outcomes[i]
    }

    /// Cached depth (ops with a saved post-state).
    pub fn depth(&self) -> usize {
        self.ops.len()
    }

    /// Drops cached state deeper than `k` ops — called after restoring
    /// `mark(k)`, which invalidated those marks target-side.
    pub fn truncate(&mut self, k: usize) {
        self.ops.truncate(k);
        self.outcomes.truncate(k);
        self.marks.truncate(k + 1);
    }

    /// Extends the lineage: `op` was just executed (outcome `ok`, target
    /// clock now `raw_time`) and `mark` holds the resulting state.
    pub fn push(&mut self, op: Operation, ok: bool, raw_time: u64, mark: u64) {
        self.ops.push(op);
        self.outcomes.push((ok, raw_time));
        self.marks.push(mark);
    }

    /// Re-roots the chain on a fresh base mark (after a target reset
    /// killed the old lineage).
    pub fn rebase(&mut self, base: u64) {
        self.ops.clear();
        self.outcomes.clear();
        self.marks.clear();
        self.marks.push(base);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Operand, Operation, Operator};
    use rand::SeedableRng;

    fn case(tag: u64) -> TestCase {
        TestCase::new(vec![Operation::new(
            Operator::Create,
            vec![Operand::FileName(format!("/s{tag}")), Operand::Size(tag)],
        )])
    }

    #[test]
    fn pool_orders_by_score() {
        let mut p = SeedPool::new(8);
        p.push(case(1), 0.5);
        p.push(case(2), 2.0);
        p.push(case(3), 1.0);
        let scores: Vec<f64> = p.iter().map(|s| s.score).collect();
        assert_eq!(scores, vec![2.0, 1.0, 0.5]);
        assert_eq!(p.best_score(), 2.0);
    }

    #[test]
    fn pool_evicts_weakest_when_full() {
        let mut p = SeedPool::new(2);
        p.push(case(1), 1.0);
        p.push(case(2), 3.0);
        p.push(case(3), 2.0);
        assert_eq!(p.len(), 2);
        let scores: Vec<f64> = p.iter().map(|s| s.score).collect();
        assert_eq!(scores, vec![3.0, 2.0]);
    }

    #[test]
    fn pick_prefers_high_scores() {
        let mut p = SeedPool::new(16);
        for i in 0..16 {
            p.push(case(i), i as f64);
        }
        let mut rng = StdRng::seed_from_u64(5);
        let mut top_half = 0;
        for _ in 0..400 {
            let c = p.pick(&mut rng).unwrap().clone();
            // The top half holds scores 8..16, i.e. tags 8..16.
            if let Operand::Size(tag) = c.ops[0].opds[1] {
                if tag >= 8 {
                    top_half += 1;
                }
            }
        }
        assert!(
            top_half > 280,
            "expected bias toward top half, got {top_half}/400"
        );
    }

    #[test]
    fn empty_pool_picks_none() {
        let mut p = SeedPool::new(4);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(p.pick(&mut rng).is_none());
        assert_eq!(p.best_score(), 0.0);
    }

    #[test]
    fn clear_empties_pool() {
        let mut p = SeedPool::new(4);
        p.push(case(1), 1.0);
        p.clear();
        assert!(p.is_empty());
    }

    #[test]
    fn prefix_chain_tracks_lineage() {
        let op = |t: u64| {
            Operation::new(
                Operator::Create,
                vec![Operand::FileName(format!("/p{t}")), Operand::Size(t)],
            )
        };
        let mut c = PrefixChain::new(100);
        c.push(op(1), true, 10, 101);
        c.push(op(2), false, 20, 102);
        assert_eq!(c.depth(), 2);
        assert_eq!(c.lcp(&[op(1), op(2), op(3)]), 2);
        assert_eq!(c.lcp(&[op(1), op(9)]), 1);
        assert_eq!(c.lcp(&[op(9)]), 0);
        assert_eq!(c.mark(0), 100);
        assert_eq!(c.mark(2), 102);
        assert_eq!(c.outcome(1), (false, 20));
        c.truncate(1);
        assert_eq!(c.depth(), 1);
        assert_eq!(c.mark(1), 101);
        assert_eq!(c.lcp(&[op(1), op(2)]), 1, "truncated ops no longer match");
        c.rebase(200);
        assert_eq!(c.depth(), 0);
        assert_eq!(c.mark(0), 200);
    }
}
