//! Operation-sequence generation (Section 4.2, *Initial OpSeq Generation*).
//!
//! Sequences have length 1..=`max_n` with `max_n = 8`, guided by the
//! study's Finding 5 (all observed failures trigger within 8 steps).
//! Operators are drawn uniformly (probability `1/t`, `t = 17`), and
//! operands are instantiated from the input model.

use crate::model::InputModel;
use crate::spec::{Operation, Operator, TestCase, ALL_OPERATORS, CONFIG_OPERATORS, FILE_OPERATORS};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::RngExt;

/// Maximum operation-sequence length (the paper's `max_n`).
pub const MAX_SEQ_LEN: usize = 8;

/// Which part of the grammar a generator may draw from.
///
/// Themis always draws from the full grammar; the fix-one-input baselines
/// restrict their fuzzed space to one category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpDraw {
    /// The full 17-operator grammar.
    Any,
    /// Client-request operators only.
    FileOnly,
    /// Configuration operators only.
    ConfigOnly,
}

/// Draws an operator from the selected grammar subset.
pub fn operator_for(draw: OpDraw, rng: &mut StdRng) -> Operator {
    match draw {
        OpDraw::Any => any_operator(rng),
        OpDraw::FileOnly => file_operator(rng),
        OpDraw::ConfigOnly => config_operator(rng),
    }
}

/// Generates one operation from the selected grammar subset.
pub fn operation_for(draw: OpDraw, model: &mut InputModel, rng: &mut StdRng) -> Operation {
    let opt = operator_for(draw, rng);
    model.instantiate(opt, rng)
}

/// Draws a uniform operator from the full grammar.
pub fn any_operator(rng: &mut StdRng) -> Operator {
    *ALL_OPERATORS.as_slice().choose(rng).expect("nonempty")
}

/// Draws a uniform client-request operator.
pub fn file_operator(rng: &mut StdRng) -> Operator {
    *FILE_OPERATORS.as_slice().choose(rng).expect("nonempty")
}

/// Draws a uniform configuration operator.
pub fn config_operator(rng: &mut StdRng) -> Operator {
    *CONFIG_OPERATORS.as_slice().choose(rng).expect("nonempty")
}

/// Generates one operation with a uniformly drawn operator.
pub fn any_operation(model: &mut InputModel, rng: &mut StdRng) -> Operation {
    let opt = any_operator(rng);
    model.instantiate(opt, rng)
}

/// Generates a random test case of length 1..=`max_len`.
pub fn random_case(model: &mut InputModel, rng: &mut StdRng, max_len: usize) -> TestCase {
    let len = rng.random_range(1..=max_len.max(1));
    let ops = (0..len).map(|_| any_operation(model, rng)).collect();
    TestCase::new(ops)
}

/// Generates a request-only test case (used by the Fix-configuration
/// baseline and the request phases of Alternate).
pub fn request_only_case(model: &mut InputModel, rng: &mut StdRng, max_len: usize) -> TestCase {
    let len = rng.random_range(1..=max_len.max(1));
    let ops = (0..len)
        .map(|_| model.instantiate(file_operator(rng), rng))
        .collect();
    TestCase::new(ops)
}

/// Generates a configuration-only test case (used by the Fix-requests
/// baseline and the config phases of Alternate).
pub fn config_only_case(model: &mut InputModel, rng: &mut StdRng, max_len: usize) -> TestCase {
    let len = rng.random_range(1..=max_len.max(1));
    let ops = (0..len)
        .map(|_| model.instantiate(config_operator(rng), rng))
        .collect();
    TestCase::new(ops)
}

/// Generates the initial seed corpus: `n` random cases.
pub fn initial_corpus(
    model: &mut InputModel,
    rng: &mut StdRng,
    n: usize,
    max_len: usize,
) -> Vec<TestCase> {
    (0..n).map(|_| random_case(model, rng, max_len)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptor::NodeInventory;
    use rand::SeedableRng;

    fn setup() -> (InputModel, StdRng) {
        let mut m = InputModel::new();
        m.sync(&NodeInventory {
            mgmt: vec![0, 1],
            storage: vec![2, 3],
            volumes: vec![10],
            free_space: 1 << 30,
            files: vec!["/a".into()],
            dirs: vec![],
        });
        (m, StdRng::seed_from_u64(11))
    }

    #[test]
    fn random_cases_respect_length_bounds() {
        let (mut m, mut r) = setup();
        for _ in 0..200 {
            let c = random_case(&mut m, &mut r, MAX_SEQ_LEN);
            assert!(!c.is_empty());
            assert!(c.len() <= MAX_SEQ_LEN);
            assert!(c.well_formed());
        }
    }

    #[test]
    fn request_only_cases_have_no_config_ops() {
        let (mut m, mut r) = setup();
        for _ in 0..100 {
            let c = request_only_case(&mut m, &mut r, MAX_SEQ_LEN);
            assert!(c.ops.iter().all(|o| o.opt.is_file_op()));
        }
    }

    #[test]
    fn config_only_cases_have_no_file_ops() {
        let (mut m, mut r) = setup();
        for _ in 0..100 {
            let c = config_only_case(&mut m, &mut r, MAX_SEQ_LEN);
            assert!(c.ops.iter().all(|o| o.opt.is_config_op()));
        }
    }

    #[test]
    fn all_operators_eventually_generated() {
        let (mut m, mut r) = setup();
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..2_000 {
            seen.insert(any_operation(&mut m, &mut r).opt);
        }
        assert_eq!(seen.len(), 17, "uniform drawing must hit every operator");
    }

    #[test]
    fn initial_corpus_has_requested_size() {
        let (mut m, mut r) = setup();
        let corpus = initial_corpus(&mut m, &mut r, 16, MAX_SEQ_LEN);
        assert_eq!(corpus.len(), 16);
        assert!(corpus.iter().all(TestCase::well_formed));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let (mut m1, mut r1) = setup();
        let (mut m2, mut r2) = setup();
        let a = random_case(&mut m1, &mut r1, MAX_SEQ_LEN);
        let b = random_case(&mut m2, &mut r2, MAX_SEQ_LEN);
        assert_eq!(a, b);
    }
}
